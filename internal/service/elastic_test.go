package service

import (
	"net/http"
	"testing"
	"time"

	"funcx/internal/api"
	"funcx/internal/elastic"
	"funcx/internal/store"
	"funcx/internal/types"
)

// --- batch submit atomicity ---

func TestBatchSubmitValidatesBeforeEnqueueing(t *testing.T) {
	svc, srv, token := testService(t)
	ep := registerTestEndpoint(t, srv, token, "ep", nil)
	fnID := registerTestFunction(t, srv, token)

	// Second task names an unknown function: the whole batch must be
	// rejected with nothing enqueued for the first task.
	var resp api.BatchSubmitResponse
	code := doJSON(t, srv, token, http.MethodPost, "/v1/tasks/batch", api.BatchSubmitRequest{
		Tasks: []api.SubmitRequest{
			{FunctionID: fnID, EndpointID: ep, Payload: []byte("ok")},
			{FunctionID: "no-such-function", EndpointID: ep, Payload: []byte("bad")},
			{FunctionID: fnID, EndpointID: ep, Payload: []byte("ok")},
		},
	}, &resp)
	if code != http.StatusNotFound {
		t.Fatalf("batch with unknown function = %d, want 404", code)
	}
	if len(resp.TaskIDs) != 0 {
		t.Fatalf("rejected batch returned ids: %v", resp.TaskIDs)
	}
	if n := svc.Store.Queue(store.TaskQueueName(string(ep))).Len(); n != 0 {
		t.Fatalf("rejected batch left %d tasks enqueued", n)
	}
	if submitted, _ := svc.Stats(); submitted != 0 {
		t.Fatalf("rejected batch counted %d submissions", submitted)
	}

	// A fully valid batch still lands every task.
	code = doJSON(t, srv, token, http.MethodPost, "/v1/tasks/batch", api.BatchSubmitRequest{
		Tasks: []api.SubmitRequest{
			{FunctionID: fnID, EndpointID: ep, Payload: []byte("a")},
			{FunctionID: fnID, EndpointID: ep, Payload: []byte("b")},
		},
	}, &resp)
	if code != http.StatusAccepted || len(resp.TaskIDs) != 2 {
		t.Fatalf("valid batch = %d, ids %v", code, resp.TaskIDs)
	}
	if n := svc.Store.Queue(store.TaskQueueName(string(ep))).Len(); n != 2 {
		t.Fatalf("valid batch enqueued %d tasks, want 2", n)
	}
}

func TestBatchSubmitRejectsUnsatisfiableSelectorUpfront(t *testing.T) {
	svc, srv, token := testService(t)
	ep := registerTestEndpoint(t, srv, token, "cpu", map[string]string{"arch": "cpu"})
	fnID := registerTestFunction(t, srv, token)
	g, err := svc.CreateGroup("alice", "fleet", "", false, []types.GroupMember{{EndpointID: ep}})
	if err != nil {
		t.Fatalf("CreateGroup: %v", err)
	}

	var resp api.BatchSubmitResponse
	code := doJSON(t, srv, token, http.MethodPost, "/v1/tasks/batch", api.BatchSubmitRequest{
		Tasks: []api.SubmitRequest{
			{FunctionID: fnID, GroupID: g.ID, Payload: []byte("ok")},
			{FunctionID: fnID, GroupID: g.ID, Payload: []byte("bad"), Labels: map[string]string{"arch": "gpu"}},
		},
	}, &resp)
	if code != http.StatusBadRequest {
		t.Fatalf("batch with unsatisfiable selector = %d, want 400", code)
	}
	if n := svc.Store.Queue(store.TaskQueueName(string(ep))).Len(); n != 0 {
		t.Fatalf("rejected batch left %d tasks enqueued", n)
	}
}

// --- elasticity API ---

func TestCreateElasticGroupValidatesSpec(t *testing.T) {
	svc, srv, token := testService(t)
	ep := registerTestEndpoint(t, srv, token, "ep", nil)

	var created api.CreateGroupResponse
	code := doJSON(t, srv, token, http.MethodPost, "/v1/groups", api.CreateGroupRequest{
		Name:    "fleet",
		Members: []types.GroupMember{{EndpointID: ep}},
		Elastic: &types.ElasticSpec{Strategy: "warp-speed"},
	}, &created)
	if code != http.StatusBadRequest {
		t.Fatalf("unknown strategy = %d, want 400", code)
	}

	code = doJSON(t, srv, token, http.MethodPost, "/v1/groups", api.CreateGroupRequest{
		Name:    "fleet",
		Members: []types.GroupMember{{EndpointID: ep}},
		Elastic: &types.ElasticSpec{Strategy: elastic.StrategyProportional, TasksPerBlock: 2},
	}, &created)
	if code != http.StatusCreated {
		t.Fatalf("elastic group = %d, want 201", code)
	}
	if created.Group.Elastic == nil || created.Group.Elastic.TasksPerBlock != 2 {
		t.Fatalf("spec not stored: %+v", created.Group.Elastic)
	}
	if created.Group.Elastic.AdviceTTL <= 0 {
		t.Fatal("service did not default the advice TTL")
	}
	if _, err := svc.CreateGroupElastic("alice", "bad", "", false,
		[]types.GroupMember{{EndpointID: ep}},
		&types.ElasticSpec{HighWater: 1, LowWater: 2}); err == nil {
		t.Fatal("inverted watermarks accepted")
	}
}

func TestGroupElasticityEndpointReportsAdvice(t *testing.T) {
	svc, srv, token := testService(t)
	ep := registerTestEndpoint(t, srv, token, "ep", nil)
	fnID := registerTestFunction(t, srv, token)

	var created api.CreateGroupResponse
	code := doJSON(t, srv, token, http.MethodPost, "/v1/groups", api.CreateGroupRequest{
		Name:    "fleet",
		Members: []types.GroupMember{{EndpointID: ep}},
		Elastic: &types.ElasticSpec{Strategy: elastic.StrategyProportional},
	}, &created)
	if code != http.StatusCreated {
		t.Fatalf("create elastic group = %d", code)
	}

	// Build backlog: no agent is connected, so routed tasks queue.
	for i := 0; i < 4; i++ {
		var sub api.SubmitResponse
		if code := doJSON(t, srv, token, http.MethodPost, "/v1/tasks", api.SubmitRequest{
			FunctionID: fnID, GroupID: created.Group.ID, Payload: []byte("x"),
		}, &sub); code != http.StatusAccepted {
			t.Fatalf("submit %d = %d", i, code)
		}
	}

	// The controller runs on the service context; one evaluation is
	// enough for advice to appear. Tick synchronously instead of
	// sleeping for the interval.
	svc.Elastic.Tick()

	var resp api.GroupElasticityResponse
	code = doJSON(t, srv, token, http.MethodGet,
		"/v1/groups/"+string(created.Group.ID)+"/elasticity", nil, &resp)
	if code != http.StatusOK {
		t.Fatalf("elasticity status = %d", code)
	}
	if resp.Group.Elastic == nil {
		t.Fatal("response missing elastic spec")
	}
	if len(resp.Members) != 1 {
		t.Fatalf("members = %d, want 1", len(resp.Members))
	}
	m := resp.Members[0]
	if m.Status.QueuedTasks != 4 {
		t.Fatalf("member queued = %d, want 4", m.Status.QueuedTasks)
	}
	if m.Advice == nil {
		t.Fatal("no advice after controller tick")
	}
	// The member is disconnected (no agent), so the strategy advises
	// zero — the advice record still flows end to end.
	if m.Advice.GroupID != created.Group.ID || m.Advice.TTL <= 0 {
		t.Fatalf("advice = %+v", m.Advice)
	}
	// The forwarder holds the same advice for its next heartbeat.
	fwd, ok := svc.Forwarder(ep)
	if !ok {
		t.Fatal("no forwarder for endpoint")
	}
	deadline := time.Now().Add(time.Second)
	for fwd.Advice() == nil && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if adv := fwd.Advice(); adv == nil || adv.EndpointID != ep {
		t.Fatalf("forwarder advice = %+v", adv)
	}
}

func TestElasticMembershipIsExclusive(t *testing.T) {
	svc, srv, token := testService(t)
	ep1 := registerTestEndpoint(t, srv, token, "ep1", nil)
	ep2 := registerTestEndpoint(t, srv, token, "ep2", nil)

	if _, err := svc.CreateGroupElastic("alice", "g1", "", false,
		[]types.GroupMember{{EndpointID: ep1}}, &types.ElasticSpec{}); err != nil {
		t.Fatalf("first elastic group: %v", err)
	}
	// Two controllers advising one endpoint would flap its capacity
	// target every tick: a second elastic group sharing ep1 conflicts.
	code := doJSON(t, srv, token, http.MethodPost, "/v1/groups", api.CreateGroupRequest{
		Name:    "g2",
		Members: []types.GroupMember{{EndpointID: ep1}},
		Elastic: &types.ElasticSpec{},
	}, nil)
	if code != http.StatusConflict {
		t.Fatalf("overlapping elastic group = %d, want 409", code)
	}
	// Non-elastic groups may still share the member freely.
	if _, err := svc.CreateGroup("alice", "plain", "", false,
		[]types.GroupMember{{EndpointID: ep1}}); err != nil {
		t.Fatalf("non-elastic overlap rejected: %v", err)
	}
	// Nor can an elastic group later absorb another's member.
	g2, err := svc.CreateGroupElastic("alice", "g2", "", false,
		[]types.GroupMember{{EndpointID: ep2}}, &types.ElasticSpec{})
	if err != nil {
		t.Fatalf("disjoint elastic group: %v", err)
	}
	if _, err := svc.AddGroupMembers("alice", g2.ID, types.GroupMember{EndpointID: ep1}); err == nil {
		t.Fatal("AddGroupMembers absorbed another elastic group's member")
	}
	if g, _ := svc.Registry.Group(g2.ID); len(g.Members) != 1 {
		t.Fatalf("failed add mutated membership: %+v", g.Members)
	}
}

func TestGroupElasticityRequiresAccess(t *testing.T) {
	svc, srv, token := testService(t)
	ep := registerTestEndpoint(t, srv, token, "ep", nil)
	g, err := svc.CreateGroupElastic("alice", "fleet", "", false,
		[]types.GroupMember{{EndpointID: ep}}, &types.ElasticSpec{})
	if err != nil {
		t.Fatalf("CreateGroupElastic: %v", err)
	}
	stranger := svc.MintUserToken("mallory")
	code := doJSON(t, srv, stranger, http.MethodGet,
		"/v1/groups/"+string(g.ID)+"/elasticity", nil, nil)
	if code != http.StatusForbidden {
		t.Fatalf("stranger elasticity status = %d, want 403", code)
	}
}
