package service

import (
	"io"
	"net/http"
	"testing"
	"time"

	"funcx/internal/api"
	"funcx/internal/promtext"
	"funcx/internal/trace"
	"funcx/internal/types"
)

// scrape fetches /v1/metrics and strictly parses the exposition.
func scrape(t *testing.T, url, token string) []promtext.Family {
	t.Helper()
	req, _ := http.NewRequest(http.MethodGet, url+"/v1/metrics", nil)
	req.Header.Set("Authorization", "Bearer "+token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/metrics: HTTP %d", resp.StatusCode)
	}
	fams, err := promtext.Parse(string(body))
	if err != nil {
		t.Fatalf("exposition rejected by strict parser: %v\n%s", err, body)
	}
	return fams
}

// The exposition must parse strictly even with histogram families
// present, and the stage histograms must carry the bucket invariants
// (the parser enforces +Inf, cumulativity, and le ordering).
func TestMetricsExpositionStrict(t *testing.T) {
	svc, srv, token := testService(t)

	// Synthesize two completed timelines through the collector, as the
	// lifecycle hooks would.
	for i, id := range []types.TaskID{"t-1", "t-2"} {
		start := time.Now().Add(-time.Second)
		svc.Trace.Begin(id, "ep-1", "", start)
		for _, st := range []trace.Stage{
			trace.StageRouted, trace.StageQueued, trace.StageDispatched,
			trace.StageRunning, trace.StageResult, trace.StagePublished,
		} {
			svc.Trace.Stamp(id, st)
		}
		svc.Trace.Remote(id, &types.TraceDeltas{
			Exec:         time.Duration(i+1) * time.Millisecond,
			ManagerQueue: time.Millisecond,
		})
		svc.Trace.Finish(id)
	}

	fams := scrape(t, srv.URL, token)
	h := promtext.Get(fams, "funcx_task_stage_seconds")
	if h == nil {
		t.Fatal("funcx_task_stage_seconds family missing")
	}
	if h.Type != "histogram" {
		t.Fatalf("stage family type = %s", h.Type)
	}
	// All seven stages (six + total) for ep-1 should be present.
	for _, stage := range []string{"submit", "queue", "dispatch", "execute", "return", "publish", "total"} {
		s := h.Sample(map[string]string{"stage": stage, "endpoint": "ep-1", "le": "+Inf"})
		if s == nil {
			t.Fatalf("no +Inf bucket for stage %q", stage)
		}
		if s.Value != 2 {
			t.Fatalf("stage %q +Inf bucket = %g, want 2", stage, s.Value)
		}
	}
	if c := promtext.Get(fams, "funcx_trace_completed_timelines"); c == nil || c.Samples[0].Value != 2 {
		t.Fatalf("trace_completed_timelines: %+v", c)
	}
}

// Label values must round-trip through the exposition escaping.
func TestPromWriterEscapesLabels(t *testing.T) {
	p := &promWriter{}
	nasty := "he said \"hi\\there\"\nand left"
	p.gauge("m", "test metric", 1, "v", nasty)
	fams, err := promtext.Parse(p.b.String())
	if err != nil {
		t.Fatalf("escaped output rejected: %v\n%s", err, p.b.String())
	}
	if got := fams[0].Samples[0].Labels["v"]; got != nasty {
		t.Fatalf("label round-trip: %q, want %q", got, nasty)
	}
}

// The histogram writer must emit cumulative buckets from the
// collector's per-bucket counts, with the terminal +Inf equal to the
// count.
func TestPromWriterHistogramShape(t *testing.T) {
	p := &promWriter{shard: "s-0"}
	p.header("h", "histogram", "test")
	p.histogram("h", []float64{0.001, 0.01, 0.1}, []uint64{1, 4, 4}, 0.5, 6, nil, "stage", "execute")
	fams, err := promtext.Parse(p.b.String())
	if err != nil {
		t.Fatalf("histogram output rejected: %v\n%s", err, p.b.String())
	}
	h := fams[0]
	inf := h.Sample(map[string]string{"le": "+Inf"})
	if inf == nil || inf.Value != 6 {
		t.Fatalf("+Inf bucket: %+v", inf)
	}
	if s := h.Sample(map[string]string{"le": "0.01"}); s == nil || s.Value != 4 {
		t.Fatalf("0.01 bucket: %+v", s)
	}
	for _, s := range h.Samples {
		if s.Labels["shard"] != "s-0" {
			t.Fatalf("sample missing shard label: %+v", s)
		}
	}
}

// /v1/metrics and /v1/stats must agree: they are two renderings of one
// snapshot.
func TestStatsMetricsParity(t *testing.T) {
	svc, srv, token := testService(t)
	registerTestEndpoint(t, srv, token, "ep-parity", nil)

	svc.Trace.Begin("t-active", "ep-1", "", time.Now())

	var stats api.StatsResponse
	if code := doJSON(t, srv, token, http.MethodGet, "/v1/stats", nil, &stats); code != http.StatusOK {
		t.Fatalf("GET /v1/stats = %d", code)
	}
	fams := scrape(t, srv.URL, token)

	check := func(metric string, want float64) {
		t.Helper()
		f := promtext.Get(fams, metric)
		if f == nil {
			t.Fatalf("%s missing from /v1/metrics", metric)
		}
		if got := f.Samples[0].Value; got != want {
			t.Fatalf("%s = %g, /v1/stats says %g", metric, got, want)
		}
	}
	check("funcx_tasks_submitted_total", float64(stats.Submitted))
	check("funcx_event_streams", float64(stats.EventUsers))
	check("funcx_event_subscribers", float64(stats.EventSubscribers))
	check("funcx_event_buffered_events", float64(stats.EventBufferedEvents))
	check("funcx_event_pending_done", float64(stats.EventPendingDone))
	check("funcx_event_seq_tombstones", float64(stats.EventSeqTombstones))
	check("funcx_trace_active_timelines", float64(stats.TraceActive))
	if stats.TraceActive != 1 {
		t.Fatalf("trace_active = %d, want 1", stats.TraceActive)
	}
	f := promtext.Get(fams, "funcx_endpoint_connected")
	if f == nil || len(f.Samples) != 1 {
		t.Fatalf("endpoint gauge: %+v", f)
	}
}
