package service

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"funcx/internal/api"
	"funcx/internal/router"
	"funcx/internal/store"
	"funcx/internal/types"
)

// registerTestEndpoint registers an endpoint over REST and returns its
// id. No agent connects in these tests, so routed tasks land in the
// endpoint's reliable queue (the same queue-and-wait behaviour a
// direct submission to an offline endpoint gets).
func registerTestEndpoint(t *testing.T, srv *httptest.Server, token, name string, labels map[string]string) types.EndpointID {
	t.Helper()
	var resp api.RegisterEndpointResponse
	code := doJSON(t, srv, token, http.MethodPost, "/v1/endpoints",
		api.RegisterEndpointRequest{Name: name, Labels: labels}, &resp)
	if code != http.StatusCreated {
		t.Fatalf("register endpoint %s = %d", name, code)
	}
	return resp.EndpointID
}

func registerTestFunction(t *testing.T, srv *httptest.Server, token string) types.FunctionID {
	t.Helper()
	var resp api.RegisterFunctionResponse
	code := doJSON(t, srv, token, http.MethodPost, "/v1/functions",
		api.RegisterFunctionRequest{Name: "echo", Body: []byte("echo")}, &resp)
	if code != http.StatusCreated {
		t.Fatalf("register function = %d", code)
	}
	return resp.FunctionID
}

func TestCreateGroupAndStatus(t *testing.T) {
	_, srv, token := testService(t)
	ep1 := registerTestEndpoint(t, srv, token, "ep1", nil)
	ep2 := registerTestEndpoint(t, srv, token, "ep2", nil)

	var created api.CreateGroupResponse
	code := doJSON(t, srv, token, http.MethodPost, "/v1/groups", api.CreateGroupRequest{
		Name:   "fleet",
		Policy: string(router.RoundRobin),
		Members: []types.GroupMember{
			{EndpointID: ep1}, {EndpointID: ep2},
		},
	}, &created)
	if code != http.StatusCreated {
		t.Fatalf("create group = %d", code)
	}
	if created.Group.ID == "" || len(created.Group.Members) != 2 {
		t.Fatalf("group record = %+v", created.Group)
	}

	var status api.GroupStatusResponse
	code = doJSON(t, srv, token, http.MethodGet, "/v1/groups/"+string(created.Group.ID), nil, &status)
	if code != http.StatusOK {
		t.Fatalf("group status = %d", code)
	}
	if len(status.Members) != 2 {
		t.Fatalf("group status members = %d, want 2", len(status.Members))
	}
	for i, st := range status.Members {
		if st.Connected {
			t.Fatalf("member %d reports connected with no agent", i)
		}
	}
}

func TestCreateGroupRejectsUnknownPolicy(t *testing.T) {
	_, srv, token := testService(t)
	ep := registerTestEndpoint(t, srv, token, "ep", nil)
	code := doJSON(t, srv, token, http.MethodPost, "/v1/groups", api.CreateGroupRequest{
		Name: "fleet", Policy: "bogus",
		Members: []types.GroupMember{{EndpointID: ep}},
	}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("bogus policy = %d, want 400", code)
	}
}

func TestCreateGroupRequiresDispatchableMembers(t *testing.T) {
	svc, srv, token := testService(t)
	// bob owns a private endpoint; alice cannot group it.
	bobToken := svc.MintUserToken("bob")
	bobEP := registerTestEndpoint(t, srv, bobToken, "bob-ep", nil)
	code := doJSON(t, srv, token, http.MethodPost, "/v1/groups", api.CreateGroupRequest{
		Name:    "fleet",
		Members: []types.GroupMember{{EndpointID: bobEP}},
	}, nil)
	if code != http.StatusForbidden {
		t.Fatalf("grouping someone else's private endpoint = %d, want 403", code)
	}
}

func TestGroupSubmitRoutesToMemberQueue(t *testing.T) {
	svc, srv, token := testService(t)
	ep1 := registerTestEndpoint(t, srv, token, "ep1", nil)
	ep2 := registerTestEndpoint(t, srv, token, "ep2", nil)
	fnID := registerTestFunction(t, srv, token)

	var created api.CreateGroupResponse
	doJSON(t, srv, token, http.MethodPost, "/v1/groups", api.CreateGroupRequest{
		Name:   "fleet",
		Policy: string(router.RoundRobin),
		Members: []types.GroupMember{
			{EndpointID: ep1}, {EndpointID: ep2},
		},
	}, &created)

	// Round-robin over two members: four submissions, two per queue.
	seen := map[types.EndpointID]int{}
	for i := 0; i < 4; i++ {
		var resp api.SubmitResponse
		code := doJSON(t, srv, token, http.MethodPost, "/v1/tasks", api.SubmitRequest{
			FunctionID: fnID, GroupID: created.Group.ID, Payload: []byte("x"),
		}, &resp)
		if code != http.StatusAccepted {
			t.Fatalf("submit %d = %d", i, code)
		}
		if resp.EndpointID != ep1 && resp.EndpointID != ep2 {
			t.Fatalf("submit %d placed on non-member %s", i, resp.EndpointID)
		}
		seen[resp.EndpointID]++
	}
	if seen[ep1] != 2 || seen[ep2] != 2 {
		t.Fatalf("round-robin spread = %v, want 2 each", seen)
	}
	q1 := svc.Store.Queue(store.TaskQueueName(string(ep1))).Len()
	q2 := svc.Store.Queue(store.TaskQueueName(string(ep2))).Len()
	if q1 != 2 || q2 != 2 {
		t.Fatalf("queue depths = %d,%d, want 2,2", q1, q2)
	}
}

func TestGroupSubmitAuth(t *testing.T) {
	svc, srv, token := testService(t)
	ep := registerTestEndpoint(t, srv, token, "ep", nil)
	fnID := registerTestFunction(t, srv, token)
	var created api.CreateGroupResponse
	doJSON(t, srv, token, http.MethodPost, "/v1/groups", api.CreateGroupRequest{
		Name: "private-fleet", Members: []types.GroupMember{{EndpointID: ep}},
	}, &created)

	// The function is not shared with bob, and the group is private:
	// either way bob must be rejected (the function check fires first).
	bobToken := svc.MintUserToken("bob")
	code := doJSON(t, srv, bobToken, http.MethodPost, "/v1/tasks", api.SubmitRequest{
		FunctionID: fnID, GroupID: created.Group.ID, Payload: []byte("x"),
	}, nil)
	if code != http.StatusForbidden {
		t.Fatalf("bob targeting alice's private group = %d, want 403", code)
	}
}

func TestGroupStatusRequiresAccess(t *testing.T) {
	svc, srv, token := testService(t)
	ep := registerTestEndpoint(t, srv, token, "ep", nil)
	var created api.CreateGroupResponse
	doJSON(t, srv, token, http.MethodPost, "/v1/groups", api.CreateGroupRequest{
		Name: "private", Members: []types.GroupMember{{EndpointID: ep}},
	}, &created)

	bobToken := svc.MintUserToken("bob")
	code := doJSON(t, srv, bobToken, http.MethodGet, "/v1/groups/"+string(created.Group.ID), nil, nil)
	if code != http.StatusForbidden {
		t.Fatalf("bob reading alice's private group = %d, want 403", code)
	}
	code = doJSON(t, srv, token, http.MethodGet, "/v1/groups/"+string(created.Group.ID), nil, nil)
	if code != http.StatusOK {
		t.Fatalf("owner reading own group = %d, want 200", code)
	}
}

func TestSubmitRejectsAmbiguousTarget(t *testing.T) {
	_, srv, token := testService(t)
	ep := registerTestEndpoint(t, srv, token, "ep", nil)
	fnID := registerTestFunction(t, srv, token)
	var created api.CreateGroupResponse
	doJSON(t, srv, token, http.MethodPost, "/v1/groups", api.CreateGroupRequest{
		Name: "fleet", Members: []types.GroupMember{{EndpointID: ep}},
	}, &created)

	code := doJSON(t, srv, token, http.MethodPost, "/v1/tasks", api.SubmitRequest{
		FunctionID: fnID, EndpointID: ep, GroupID: created.Group.ID, Payload: []byte("x"),
	}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("both endpoint and group = %d, want 400", code)
	}
	code = doJSON(t, srv, token, http.MethodPost, "/v1/tasks", api.SubmitRequest{
		FunctionID: fnID, Payload: []byte("x"),
	}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("neither endpoint nor group = %d, want 400", code)
	}
}

func TestAddGroupMembers(t *testing.T) {
	_, srv, token := testService(t)
	ep1 := registerTestEndpoint(t, srv, token, "ep1", nil)
	ep2 := registerTestEndpoint(t, srv, token, "ep2", nil)
	var created api.CreateGroupResponse
	doJSON(t, srv, token, http.MethodPost, "/v1/groups", api.CreateGroupRequest{
		Name: "fleet", Members: []types.GroupMember{{EndpointID: ep1}},
	}, &created)

	var updated api.CreateGroupResponse
	code := doJSON(t, srv, token, http.MethodPost, "/v1/groups/"+string(created.Group.ID)+"/members",
		api.AddGroupMembersRequest{Members: []types.GroupMember{{EndpointID: ep2}, {EndpointID: ep1}}}, &updated)
	if code != http.StatusOK {
		t.Fatalf("add members = %d", code)
	}
	if len(updated.Group.Members) != 2 {
		t.Fatalf("members after add = %d, want 2 (duplicate skipped)", len(updated.Group.Members))
	}
}

func TestGroupSubmitLabelSelector(t *testing.T) {
	_, srv, token := testService(t)
	cpu := registerTestEndpoint(t, srv, token, "cpu", map[string]string{"arch": "cpu"})
	gpu := registerTestEndpoint(t, srv, token, "gpu", map[string]string{"arch": "gpu"})
	fnID := registerTestFunction(t, srv, token)
	var created api.CreateGroupResponse
	doJSON(t, srv, token, http.MethodPost, "/v1/groups", api.CreateGroupRequest{
		Name:   "het-fleet",
		Policy: string(router.LeastOutstanding),
		Members: []types.GroupMember{
			{EndpointID: cpu}, {EndpointID: gpu},
		},
	}, &created)

	for i := 0; i < 3; i++ {
		var resp api.SubmitResponse
		code := doJSON(t, srv, token, http.MethodPost, "/v1/tasks", api.SubmitRequest{
			FunctionID: fnID, GroupID: created.Group.ID, Payload: []byte("x"),
			Labels: map[string]string{"arch": "gpu"},
		}, &resp)
		if code != http.StatusAccepted {
			t.Fatalf("submit %d = %d", i, code)
		}
		if resp.EndpointID != gpu {
			t.Fatalf("submit %d placed on %s, want gpu endpoint", i, resp.EndpointID)
		}
	}

	// A selector no member satisfies is a client error, not a silent
	// misplacement.
	code := doJSON(t, srv, token, http.MethodPost, "/v1/tasks", api.SubmitRequest{
		FunctionID: fnID, GroupID: created.Group.ID, Payload: []byte("x"),
		Labels: map[string]string{"arch": "tpu"},
	}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("unsatisfiable selector = %d, want 400", code)
	}
}
