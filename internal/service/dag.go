// Server-side task composition: the service face of internal/dag.
//
// A client submits a whole dependency graph in one call (or chains a
// single task onto earlier ones via SubmitSpec.DependsOn); from then
// on every edge is traversed inside the fabric. The service holds the
// graph, releases a child the instant its last parent lands a terminal
// event, binds the parents' outputs into the child's payload without
// the bytes ever leaving the service (large outputs become
// dataref.Refs), routes the child with affinity toward where its
// parents ran, and propagates a failed or lost parent to every
// descendant as a typed dag_dependency_failed result — so no future
// ever hangs. Graph state is journaled through the WAL (dagsHash for
// the graph record, dagOutputsHash for parent outputs awaiting
// binding), and recovery.go replays pending edges after a crash.
//
// Lock order: dagMu is taken alone or over s.mu, never under it and
// never across a resultsHash write — the results-hash watch
// (onResultStored) re-enters applyDAGResult, so writing a result while
// holding dagMu would self-deadlock. Every completion therefore
// *collects* the releases and synthetic failures it unlocked under
// dagMu and executes them after the unlock; each executed action lands
// its own result, recursing through the hook one graph level at a time.
package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net/http"
	"time"

	"funcx/internal/api"
	"funcx/internal/auth"
	"funcx/internal/dag"
	"funcx/internal/dataref"
	"funcx/internal/registry"
	"funcx/internal/shard"
	"funcx/internal/types"
	"funcx/internal/wire"
)

// dagRef locates one graph node waiting on a task id. A slice of these
// hangs off every pending task in dagByTask: one external parent may
// feed several graphs, and the completion hook fires once per stored
// result, so a single firing must transition all of them.
type dagRef struct {
	id  types.DAGID
	key string
}

// dagRelease carries everything needed to place one claimed node
// outside the graph lock: the payload is already bound (parent outputs
// inlined or ref'd), the task id pre-minted, and the preferred endpoint
// chosen from where the parents ran.
type dagRelease struct {
	dagID   types.DAGID
	key     string
	taskID  types.TaskID
	owner   types.UserID
	spec    dag.TaskSpec
	payload []byte
	prefer  types.EndpointID
	// dependent marks a release driven by parent completions (an
	// internal edge traversed server-side), as opposed to a root.
	dependent bool
}

// dagFail carries one claimed child's synthetic terminal failure.
type dagFail struct {
	taskID  types.TaskID
	owner   types.UserID
	errJSON string
	// dep marks a typed dependency propagation (counted separately
	// from binding/validation failures).
	dep bool
}

// dagDone captures a newly finished graph for its lifecycle event.
type dagDone struct {
	id     types.DAGID
	owner  types.UserID
	status types.TaskStatus
}

// defaultDAGInlineLimit is the largest parent output bound inline into
// a child payload; larger outputs register in the dataref fabric and
// travel as references (§4.6: large data moves out of band).
const defaultDAGInlineLimit = 64 << 10

// dagInlineLimit resolves Config.DAGInlineLimit (0 = default, negative
// = always inline).
func (s *Service) dagInlineLimit() int {
	if s.cfg.DAGInlineLimit != 0 {
		return s.cfg.DAGInlineLimit
	}
	return defaultDAGInlineLimit
}

// mintDAGID mints a graph id this shard owns on the ring, so any front
// door can route GET /v1/dags/{id} to the owner from the id alone.
func (s *Service) mintDAGID() types.DAGID {
	if s.cfg.Ring == nil {
		return types.NewDAGID()
	}
	return shard.MintAligned(s.cfg.Ring, types.NewDAGID, shard.DAGKey)
}

// SubmitDAG validates, registers, journals, and starts one dependency
// graph, returning its id, the pre-minted task id of every node, and
// the keys served wholesale from the memo cache at submit time. Every
// node is validated (payload limit, invocation rights, target shape)
// before anything is stored, so a bad node rejects the whole graph.
func (s *Service) SubmitDAG(owner types.UserID, specs []dag.NodeSpec) (types.DAGID, map[string]types.TaskID, []string, error) {
	for _, ns := range specs {
		if _, err := s.prepare(owner, submissionOfSpec(ns.Spec, nil)); err != nil {
			return "", nil, nil, fmt.Errorf("dag node %q: %w", ns.Key, err)
		}
	}
	id := s.mintDAGID()
	now := time.Now()
	g, err := dag.New(id, owner, specs, now)
	if err != nil {
		return "", nil, nil, fmt.Errorf("%w: %w", ErrInvalidRequest, err)
	}
	tasks := make(map[string]types.TaskID, len(specs))
	for _, key := range g.Order {
		if n := g.Node(key); !n.External {
			n.TaskID = s.mintTaskID()
			tasks[key] = n.TaskID
		}
	}

	// Owner and held status records land before the graph goes live:
	// status and wait surfaces must recognize every node id the moment
	// the response returns, and recovery rebuilds held nodes from these
	// records plus the journaled graph.
	for _, key := range g.Order {
		if n := g.Node(key); !n.External {
			s.Store.Hash(ownersHash).Set(string(n.TaskID), []byte(owner))
			//funcx:ignore statusguard pre-go-live: the graph is not yet in s.dags and these node ids are unknown to every dispatcher, so nothing can race the held record.
			s.Store.Hash(statusHash).Set(string(n.TaskID), []byte(types.TaskPending))
		}
	}
	var externals []dagRef
	s.dagMu.Lock()
	s.dags[id] = g
	for _, key := range g.Order {
		n := g.Node(key)
		if !n.State.Terminal() {
			s.dagByTask[n.TaskID] = append(s.dagByTask[n.TaskID], dagRef{id: id, key: key})
		}
		if n.External {
			externals = append(externals, dagRef{id: id, key: key})
		}
	}
	s.persistDAGLocked(g)
	s.dagMu.Unlock()
	s.mu.Lock()
	s.dagsSubmitted++
	s.dagNodes += int64(len(tasks))
	s.mu.Unlock()

	for _, key := range g.Order {
		if n := g.Node(key); !n.External {
			//funcx:ignore statusguard every node is still Held (no release has run), so no concurrent transition can reorder against these pending events.
			s.publish(owner, types.TaskEvent{
				TaskID: n.TaskID, Status: types.TaskPending, DAGID: id, Time: now,
			})
		}
	}
	//funcx:ignore statusguard DAG lifecycle event for a graph id, not a task status transition; graph state is serialized by dagMu.
	s.publish(owner, types.TaskEvent{
		TaskID: types.TaskID(id), Status: types.DAGRunning, DAGID: id, Time: now,
	})

	// External parents first (their results may already be stored, in
	// which case the children release below), then the roots. Both may
	// cascade synchronously through the memo cache: a fully memoized
	// graph completes before this call returns.
	for _, ext := range externals {
		s.resolveExternalParent(ext.id, ext.key)
	}
	s.releaseDAGReady(id)

	var memoized []string
	s.dagMu.Lock()
	for _, key := range g.Order {
		if n := g.Node(key); !n.External && n.Memoized {
			memoized = append(memoized, key)
		}
	}
	s.dagMu.Unlock()
	if len(memoized) > 0 {
		s.mu.Lock()
		s.dagMemoHits += int64(len(memoized))
		s.mu.Unlock()
	}
	s.log.Info("dag submitted",
		"dag_id", string(id), "owner", string(owner),
		"nodes", len(tasks), "memoized", len(memoized))
	return id, tasks, memoized, nil
}

// SubmitChained is the SubmitSpec.DependsOn surface: one task whose
// inputs are earlier task ids, modeled as a single-node graph with
// external parents. Returns the node's task id and whether it was
// served from the memo cache at submit time.
func (s *Service) SubmitChained(owner types.UserID, sub Submission, deps []types.TaskID) (types.TaskID, types.DAGID, bool, error) {
	spec := dag.NodeSpec{
		Key: "task",
		Spec: dag.TaskSpec{
			Function: sub.FunctionID, Endpoint: sub.EndpointID, Group: sub.GroupID,
			Labels: sub.Labels, Payload: sub.Payload, Memoize: sub.Memoize,
			Walltime: sub.Walltime, MaxRetries: sub.MaxRetries, AtMostOnce: sub.AtMostOnce,
		},
		Requires: deps,
	}
	id, tasks, memoized, err := s.SubmitDAG(owner, []dag.NodeSpec{spec})
	if err != nil {
		return "", "", false, err
	}
	return tasks["task"], id, len(memoized) > 0, nil
}

// submissionOfSpec builds the service submission for a node, with the
// bound payload substituted for the template's own.
func submissionOfSpec(spec dag.TaskSpec, payload []byte) Submission {
	if payload == nil {
		payload = spec.Payload
	}
	return Submission{
		FunctionID: spec.Function, EndpointID: spec.Endpoint, GroupID: spec.Group,
		Labels: spec.Labels, Payload: payload, Memoize: spec.Memoize,
		Walltime: spec.Walltime, MaxRetries: spec.MaxRetries, AtMostOnce: spec.AtMostOnce,
	}
}

// DAGStatus reports a graph's live per-node state in topological
// order. Owner-only (empty actor skips the check for trusted
// in-process callers).
func (s *Service) DAGStatus(actor types.UserID, id types.DAGID) (*api.DAGStatusResponse, error) {
	s.dagMu.Lock()
	defer s.dagMu.Unlock()
	g := s.dags[id]
	if g == nil || (actor != "" && g.Owner != actor) {
		return nil, fmt.Errorf("%w: dag %s", registry.ErrNotFound, id)
	}
	resp := &api.DAGStatusResponse{DAGID: id, Status: g.Status(), Nodes: make([]api.DAGNodeStatus, 0, len(g.Order))}
	for _, key := range g.Order {
		n := g.Node(key)
		ns := api.DAGNodeStatus{
			Key: key, TaskID: n.TaskID, State: string(n.State), External: n.External,
			EndpointID: n.Endpoint, Error: n.Error, Memoized: n.Memoized,
		}
		if n.Ref != nil {
			ns.Ref = n.Ref.String()
		}
		resp.Nodes = append(resp.Nodes, ns)
	}
	return resp, nil
}

// DAGsActive counts graphs still holding or running nodes.
func (s *Service) DAGsActive() int {
	s.dagMu.Lock()
	defer s.dagMu.Unlock()
	active := 0
	for _, g := range s.dags {
		if !g.Done() {
			active++
		}
	}
	return active
}

// persistDAGLocked journals the graph record (caller holds dagMu).
func (s *Service) persistDAGLocked(g *dag.Graph) {
	s.Store.Hash(dagsHash).Set(string(g.ID), wire.EncodeDAG(g))
}

// applyDAGResult is the DAG step of the results-hash completion hook:
// when the finished task feeds any registered graph, it journals the
// output for child binding, applies the transition to every waiting
// graph, and returns the graph id to stamp on the published event plus
// the actions to execute *after* the hook's own publish — each action
// writes its own result and re-enters this hook, so they must run
// outside dagMu. Returns ("", nil) for tasks no graph is waiting on.
func (s *Service) applyDAGResult(id types.TaskID, status types.TaskStatus, endpoint types.EndpointID, value []byte) (types.DAGID, func()) {
	s.dagMu.Lock()
	refs := s.dagByTask[id]
	if len(refs) == 0 {
		s.dagMu.Unlock()
		return "", nil
	}
	delete(s.dagByTask, id)

	outcome := dag.Outcome{Status: status, Endpoint: endpoint, At: time.Now()}
	if res, err := wire.DecodeResult(value); err == nil {
		outcome.Err = res.Err
		outcome.Memoized = res.Memoized
		if status == types.TaskSuccess {
			outcome.Output = res.Output
		}
	}
	if status == types.TaskSuccess {
		// The output bytes are journaled under the task's own key before
		// any graph transition that depends on them is persisted: a
		// recovered Released child must always find the bytes it binds.
		// The full bytes are retained even past the inline limit — the
		// dataref fabric is in-memory and recovery re-registers from here.
		s.Store.Hash(dagOutputsHash).Set(string(id), outcome.Output)
		if limit := s.dagInlineLimit(); limit > 0 && len(outcome.Output) > limit {
			if ref, ok := s.putDataref(endpoint, id, outcome.Output); ok {
				outcome.Ref = &ref
				outcome.Output = nil
			}
		}
	}

	var rels []dagRelease
	var fails []dagFail
	var dones []dagDone
	for _, ref := range refs {
		g := s.dags[ref.id]
		if g == nil {
			continue
		}
		r, f, done := s.completeLocked(g, ref.key, outcome)
		rels = append(rels, r...)
		fails = append(fails, f...)
		if done != nil {
			dones = append(dones, *done)
		}
		s.persistDAGLocked(g)
	}
	dagID := refs[0].id
	s.dagMu.Unlock()

	return dagID, func() { s.executeDAGActions(rels, fails, dones) }
}

// putDataref registers a large output in the dataref fabric, placed at
// the endpoint that produced it (data gravity).
func (s *Service) putDataref(endpoint types.EndpointID, id types.TaskID, output []byte) (dataref.Ref, bool) {
	host := string(endpoint)
	if host == "" {
		host = "service"
	}
	s.Datarefs.AddEndpoint(host)
	ref, err := s.Datarefs.Put(host, "dag/"+string(id), output)
	if err != nil {
		return dataref.Ref{}, false
	}
	return ref, true
}

// completeLocked applies one node outcome to its graph and converts
// the transition into executable actions (caller holds dagMu; caller
// persists the graph). The returned dagDone is non-nil when this
// completion newly finished the graph.
func (s *Service) completeLocked(g *dag.Graph, key string, o dag.Outcome) ([]dagRelease, []dagFail, *dagDone) {
	wasDone := g.Done()
	tr := g.Complete(key, o)
	var rels []dagRelease
	var fails []dagFail
	for _, child := range tr.Release {
		rel, err := s.buildReleaseLocked(g, child)
		if err != nil {
			fails = append(fails, dagFail{
				taskID: g.Node(child).TaskID, owner: g.Owner,
				errJSON: fmt.Sprintf(`{"message":%q,"dag_id":%q}`, "dag binding failed: "+err.Error(), g.ID),
			})
			continue
		}
		rels = append(rels, rel)
	}
	for _, cf := range tr.Fail {
		fails = append(fails, dagFail{
			taskID: cf.TaskID, owner: g.Owner,
			errJSON: dag.NewDependencyError(g.ID, cf).JSON(), dep: true,
		})
	}
	if tr.Done && !wasDone {
		return rels, fails, &dagDone{id: g.ID, owner: g.Owner, status: g.Status()}
	}
	return rels, fails, nil
}

// buildReleaseLocked assembles the placement of one claimed node:
// bound payload, pre-minted id, and the affinity preference — the
// parent endpoint holding the largest output, so the child lands where
// the most input bytes already are (preference, not constraint; the
// router ignores it for down members). Caller holds dagMu.
func (s *Service) buildReleaseLocked(g *dag.Graph, key string) (dagRelease, error) {
	n := g.Node(key)
	payload, err := g.BindPayload(key)
	if err != nil {
		return dagRelease{}, err
	}
	var prefer types.EndpointID
	var preferSize int64 = -1
	for _, dep := range n.DependsOn {
		p := g.Node(dep)
		if p == nil || p.Endpoint == "" {
			continue
		}
		size := int64(len(p.Output))
		if p.Ref != nil {
			size = p.Ref.Size
		}
		if size > preferSize {
			preferSize, prefer = size, p.Endpoint
		}
	}
	return dagRelease{
		dagID: g.ID, key: key, taskID: n.TaskID, owner: g.Owner,
		spec: n.Spec, payload: payload, prefer: prefer,
		dependent: len(n.DependsOn) > 0,
	}, nil
}

// executeDAGActions runs the releases, synthetic failures, and graph
// finalizations one completion unlocked. Must be called with no
// service locks held: every action stores a result, whose hash watch
// re-enters the DAG path synchronously.
func (s *Service) executeDAGActions(rels []dagRelease, fails []dagFail, dones []dagDone) {
	for _, rel := range rels {
		s.executeRelease(rel)
	}
	for _, f := range fails {
		s.failDAGTask(f)
	}
	for _, d := range dones {
		s.finishDAG(d)
	}
}

// executeRelease places one released node through the ordinary
// submission path (validation, memoization, routing, journaling). A
// placement failure retires the node as a synthetic failure so its
// graph keeps moving and its future resolves.
func (s *Service) executeRelease(rel dagRelease) {
	if rel.dependent {
		s.mu.Lock()
		s.dagReleases++
		s.mu.Unlock()
	}
	sub := submissionOfSpec(rel.spec, rel.payload)
	p, err := s.prepare(rel.owner, sub)
	if err == nil {
		p.id = rel.taskID
		p.dagID = rel.dagID
		p.prefer = rel.prefer
		_, _, _, err = s.place(rel.owner, p, time.Now())
	}
	if err != nil {
		s.failDAGTask(dagFail{
			taskID: rel.taskID, owner: rel.owner,
			errJSON: fmt.Sprintf(`{"message":%q,"dag_id":%q}`, "dag release failed: "+err.Error(), rel.dagID),
		})
	}
}

// failDAGTask retires a claimed node with a synthetic failed result:
// an inflight entry is inserted first so the completion hook (which
// routes the terminal event, feeds the graph transition, and wakes
// waiters) processes it like any other terminal.
func (s *Service) failDAGTask(f dagFail) {
	s.mu.Lock()
	if f.dep {
		s.dagDepFailures++
	}
	if _, exists := s.inflight[f.taskID]; !exists {
		s.inflight[f.taskID] = inflightTask{owner: f.owner}
	}
	s.mu.Unlock()
	res := &types.Result{TaskID: f.taskID, Err: f.errJSON, Completed: time.Now()}
	s.Store.Hash(resultsHash).Set(string(f.taskID), wire.EncodeResult(res))
}

// finishDAG publishes a graph's lifecycle event and prunes the output
// journal: once every node is terminal, no pending edge can need the
// retained parent outputs.
func (s *Service) finishDAG(d dagDone) {
	s.mu.Lock()
	s.dagsCompleted++
	s.mu.Unlock()
	status := types.DAGSuccess
	if d.status != types.TaskSuccess {
		status = types.DAGFailed
	}
	//funcx:ignore statusguard DAG terminal event for a graph id, not a task status record; finishDAG runs once per graph, gated by the node transitions under dagMu that led here.
	s.publish(d.owner, types.TaskEvent{
		TaskID: types.TaskID(d.id), Status: status, DAGID: d.id, Time: time.Now(),
	})
	s.dagMu.Lock()
	s.dagDoneAt[d.id] = time.Now()
	if g := s.dags[d.id]; g != nil {
		for _, key := range g.Order {
			n := g.Node(key)
			s.Store.Hash(dagOutputsHash).Del(string(n.TaskID))
			if n.Ref != nil {
				s.Datarefs.Delete(*n.Ref)
			}
			if n.External && !n.State.Terminal() {
				// An unresolved external parent no longer matters: drop
				// this graph's routing ref so the entry cannot leak.
				s.dropTaskRefLocked(n.TaskID, d.id)
			}
		}
	}
	s.dagMu.Unlock()
	s.log.Info("dag finished", "dag_id", string(d.id), "status", string(status))
}

// evictFinishedDAGs periodically drops finished graphs that have been
// queryable past cfg.DAGRetention, so a long-lived shard's DAG table
// (and its journaled dag records) stays bounded by the active set plus
// one retention window of history. An evicted id thereafter answers
// GET /v1/dags/{id} with 404, exactly like an id that never existed.
func (s *Service) evictFinishedDAGs() {
	interval := max(s.cfg.DAGRetention/4, time.Second)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			s.sweepFinishedDAGs(time.Now().Add(-s.cfg.DAGRetention))
		case <-s.ctx.Done():
			return
		}
	}
}

// sweepFinishedDAGs evicts every graph that finished before cutoff:
// the in-memory record, any residual routing refs, and the journaled
// dag record (so a later recovery does not resurrect it). Returns how
// many graphs were evicted.
func (s *Service) sweepFinishedDAGs(cutoff time.Time) int {
	dagsH := s.Store.Hash(dagsHash)
	s.dagMu.Lock()
	evicted := 0
	for id, done := range s.dagDoneAt {
		if !done.Before(cutoff) {
			continue
		}
		if g := s.dags[id]; g != nil {
			for _, key := range g.Order {
				s.dropTaskRefLocked(g.Node(key).TaskID, id)
			}
		}
		delete(s.dags, id)
		delete(s.dagDoneAt, id)
		dagsH.Del(string(id))
		evicted++
	}
	s.dagMu.Unlock()
	if evicted > 0 {
		s.mu.Lock()
		s.dagsEvicted += int64(evicted)
		s.mu.Unlock()
		s.log.Debug("evicted finished dags", "count", evicted)
	}
	return evicted
}

// dropTaskRefLocked removes one graph's ref from a task's waiter list
// (caller holds dagMu).
func (s *Service) dropTaskRefLocked(id types.TaskID, dagID types.DAGID) {
	refs := s.dagByTask[id]
	kept := refs[:0]
	for _, ref := range refs {
		if ref.id != dagID {
			kept = append(kept, ref)
		}
	}
	if len(kept) == 0 {
		delete(s.dagByTask, id)
	} else {
		s.dagByTask[id] = kept
	}
}

// releaseDAGReady claims and places every currently ready node of one
// graph (used at submission for the roots, and by recovery).
func (s *Service) releaseDAGReady(id types.DAGID) {
	now := time.Now()
	var rels []dagRelease
	var fails []dagFail
	s.dagMu.Lock()
	g := s.dags[id]
	if g == nil {
		s.dagMu.Unlock()
		return
	}
	for _, key := range g.Order {
		if n := g.Node(key); n.External || !g.Ready(key) {
			continue
		}
		g.MarkReleased(key, now)
		rel, err := s.buildReleaseLocked(g, key)
		if err != nil {
			fails = append(fails, dagFail{
				taskID: g.Node(key).TaskID, owner: g.Owner,
				errJSON: fmt.Sprintf(`{"message":%q,"dag_id":%q}`, "dag binding failed: "+err.Error(), g.ID),
			})
			continue
		}
		rels = append(rels, rel)
	}
	if len(rels)+len(fails) > 0 {
		s.persistDAGLocked(g)
	}
	s.dagMu.Unlock()
	s.executeDAGActions(rels, fails, nil)
}

// --- external parents ---

// externalResolveTTL bounds a cross-shard parent resolver's patience;
// externalWaitChunk is each long-poll's hold.
const (
	externalResolveTTL = time.Hour
	externalWaitChunk  = 30 * time.Second
)

// resolveExternalParent resolves one graph's dependency on a task
// submitted outside the graph. Locally owned parents are read straight
// from the store (or, when still running, left to the completion hook,
// which the submit path already registered for). Parents owned by
// another shard get a resolver goroutine long-polling the owner over
// the gateway.
func (s *Service) resolveExternalParent(dagID types.DAGID, key string) {
	s.dagMu.Lock()
	g := s.dags[dagID]
	if g == nil {
		s.dagMu.Unlock()
		return
	}
	n := g.Node(key)
	if n == nil || n.State.Terminal() {
		s.dagMu.Unlock()
		return
	}
	taskID, owner := n.TaskID, g.Owner
	s.dagMu.Unlock()

	if s.sharded() && !s.servesKey(shard.TaskKey(taskID)) {
		go s.pollExternalParent(dagID, key, taskID, owner)
		return
	}
	// Ownership: a graph may only consume its own user's tasks.
	if o, ok := s.Store.Hash(ownersHash).Get(string(taskID)); ok && types.UserID(o) != owner {
		s.failExternalParent(dagID, key, taskID, "parent task not found")
		return
	}
	if b, ok := s.Store.Hash(resultsHash).Get(string(taskID)); ok {
		st := types.TaskSuccess
		if res, err := wire.DecodeResult(b); err == nil {
			st = terminalStatusOf(res)
		}
		if _, after := s.applyDAGResult(taskID, st, "", b); after != nil {
			after()
		}
		return
	}
	st, ok := s.Store.Hash(statusHash).Get(string(taskID))
	switch {
	case !ok:
		s.failExternalParent(dagID, key, taskID, "unknown parent task")
	case types.TaskStatus(st).Terminal():
		// Terminal but the result is gone: it was already retrieved and
		// purged, so there is nothing left to bind.
		s.failExternalParent(dagID, key, taskID, "parent output already retrieved and purged")
	default:
		// Still running here: the completion hook fires when it lands
		// (the graph registered in dagByTask at submission).
	}
}

// failExternalParent marks an external parent lost for one graph,
// propagating the typed failure to its held children through the
// ordinary completion machinery.
func (s *Service) failExternalParent(dagID types.DAGID, key string, taskID types.TaskID, why string) {
	s.dagMu.Lock()
	g := s.dags[dagID]
	if g == nil {
		s.dagMu.Unlock()
		return
	}
	rels, fails, done := s.completeLocked(g, key, dag.Outcome{
		Status: types.TaskLost, Err: fmt.Sprintf(`{"message":%q,"task_id":%q}`, why, taskID), At: time.Now(),
	})
	s.persistDAGLocked(g)
	s.dropTaskRefLocked(taskID, dagID)
	s.dagMu.Unlock()
	var dones []dagDone
	if done != nil {
		dones = append(dones, *done)
	}
	s.executeDAGActions(rels, fails, dones)
}

// pollExternalParent long-polls a cross-shard parent's owner over the
// gateway until the result lands, then feeds it to every waiting graph
// exactly as a local completion would. The service self-mints an
// owner-scoped token (valid fleet-wide via the shared signing key), so
// the resolver survives service restarts without any client
// credential. The owner's wait purges the parent result there —
// first-reader-wins, like any retrieval.
func (s *Service) pollExternalParent(dagID types.DAGID, key string, taskID types.TaskID, owner types.UserID) {
	token := s.Authority.Mint(owner, externalResolveTTL, auth.ScopeRun)
	target := s.keyOwner(shard.TaskKey(taskID))
	deadline := time.Now().Add(externalResolveTTL)
	for s.ctx.Err() == nil && time.Now().Before(deadline) {
		res, retry := s.waitRemoteTask(target, token, taskID)
		if res != nil {
			if _, after := s.applyDAGResult(taskID, terminalStatusOf(res), "", wire.EncodeResult(res)); after != nil {
				after()
			}
			return
		}
		if !retry {
			s.failExternalParent(dagID, key, taskID, "parent task not found on owner shard")
			return
		}
		select {
		case <-time.After(time.Second):
		case <-s.ctx.Done():
			return
		}
	}
	if s.ctx.Err() == nil {
		s.failExternalParent(dagID, key, taskID, "cross-shard parent unresolved before deadline")
	}
}

// waitRemoteTask issues one blocking wait against the parent's owner
// shard, returning the result when it landed, or retry=true when the
// task is still pending (or the shard was unreachable, e.g.
// mid-restart).
func (s *Service) waitRemoteTask(target shard.Info, token string, id types.TaskID) (res *types.Result, retry bool) {
	body, err := json.Marshal(api.WaitTasksRequest{
		TaskIDs: []types.TaskID{id}, Wait: externalWaitChunk.String(),
	})
	if err != nil {
		return nil, false
	}
	req, err := http.NewRequestWithContext(s.ctx, http.MethodPost,
		target.BaseURL+"/v1/tasks/wait", bytes.NewReader(body))
	if err != nil {
		return nil, false
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Authorization", "Bearer "+token)
	resp, err := s.proxyClient.Do(req)
	if err != nil {
		return nil, true
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, false
	}
	if resp.StatusCode != http.StatusOK {
		return nil, true
	}
	var out api.WaitTasksResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, true
	}
	for _, rr := range out.Results {
		if rr.TaskID == id {
			return &types.Result{
				TaskID: rr.TaskID, Output: rr.Output, Err: rr.Error,
				Memoized: rr.Memoized, Lost: rr.Lost, Completed: time.Now(),
			}, false
		}
	}
	return nil, true
}

// --- crash recovery (called from recovery.go) ---

// recoverDAGs rebuilds the in-memory graph table from the journal:
// graph records from dagsHash, pending-edge routing in dagByTask, and
// parent outputs (re-registering large ones in the dataref fabric,
// which is runtime state the crash destroyed). It returns the task ids
// recovery must NOT treat as ordinary in-flight tasks: held nodes have
// owner and status records but no task record — the inflight sweep
// would falsely retire them as lost — and claimed-but-unplaced nodes
// are re-driven by resumeDAGs instead.
func (s *Service) recoverDAGs() map[types.TaskID]bool {
	dagsH := s.Store.Hash(dagsHash)
	outs := s.Store.Hash(dagOutputsHash)
	tasksH := s.Store.Hash(tasksHash)
	results := s.Store.Hash(resultsHash)
	skip := make(map[types.TaskID]bool)
	s.dagMu.Lock()
	defer s.dagMu.Unlock()
	for _, id := range dagsH.Keys() {
		data, ok := dagsH.Get(id)
		if !ok {
			continue
		}
		g, err := wire.DecodeDAG(data)
		if err != nil {
			s.log.Warn("corrupt journaled dag record dropped", "dag_id", id, "err", err)
			continue
		}
		for _, key := range g.Order {
			n := g.Node(key)
			if b, ok := outs.Get(string(n.TaskID)); ok {
				if n.Ref != nil {
					// Rebuild the dataref object from the journaled bytes;
					// the inline output stays nil so re-bound envelopes are
					// byte-identical to pre-crash ones (memo composition).
					if ref, ok := s.putDataref(types.EndpointID(n.Ref.Endpoint), n.TaskID, b); ok {
						*n.Ref = ref
					} else {
						n.Ref = nil
						n.Output = b
					}
				} else {
					n.Output = b
				}
			}
			if !n.State.Terminal() {
				s.dagByTask[n.TaskID] = append(s.dagByTask[n.TaskID], dagRef{id: g.ID, key: key})
			}
			if n.External {
				continue
			}
			if n.State == dag.StateHeld {
				skip[n.TaskID] = true
			}
			if n.State == dag.StateReleased {
				if _, placed := tasksH.Get(string(n.TaskID)); !placed {
					if _, landed := results.Get(string(n.TaskID)); !landed {
						// Claimed but never placed (crash inside the release
						// window): resumeDAGs re-drives it.
						skip[n.TaskID] = true
					}
				}
			}
		}
		s.dags[g.ID] = g
		if g.Done() {
			// A graph recovered already-terminal has no finishDAG ahead
			// of it: stamp it now so the retention sweeper still evicts
			// it one window after the restart.
			s.dagDoneAt[g.ID] = time.Now()
		}
	}
	return skip
}

// resumeDAGs re-drives every recovered graph after forwarders are up:
// transitions whose results landed before the crash are re-applied,
// claimed-but-unplaced nodes are re-released (or failed, typed, when a
// parent had already failed), newly ready held nodes release, and
// cross-shard parent resolvers respawn. In-flight released nodes are
// left to the ordinary delivery path.
func (s *Service) resumeDAGs() {
	tasksH := s.Store.Hash(tasksHash)
	results := s.Store.Hash(resultsHash)
	statuses := s.Store.Hash(statusHash)
	outs := s.Store.Hash(dagOutputsHash)
	now := time.Now()

	type stale struct {
		id    types.TaskID
		value []byte
	}
	var stales []stale
	var rels []dagRelease
	var fails []dagFail
	var dones []dagDone
	var externals []dagRef

	s.dagMu.Lock()
	for _, g := range s.dags {
		if g.Done() {
			continue
		}
		changed := false
		for _, key := range g.Order {
			n := g.Node(key)
			if n.External {
				if !n.State.Terminal() {
					externals = append(externals, dagRef{id: g.ID, key: key})
				}
				continue
			}
			id := string(n.TaskID)
			// Resume decisions for live nodes; terminal states were
			// skipped above.
			//funcx:exhaustive funcx/internal/dag.State ignore=StateSuccess,StateFailed,StateLost
			switch n.State {
			case dag.StateReleased:
				if b, ok := results.Get(id); ok {
					// The result landed pre-crash but the graph record
					// missed the transition: re-apply it outside the lock
					// through the ordinary completion path.
					if refs := s.dagByTask[n.TaskID]; len(refs) > 0 {
						stales = append(stales, stale{id: n.TaskID, value: b})
					}
					continue
				}
				if _, placed := tasksH.Get(id); placed {
					continue // in flight; normal delivery finishes it
				}
				if b, ok := outs.Get(id); ok {
					// Output journaled but neither result nor transition
					// survived: the node did succeed.
					r, f, done := s.completeLocked(g, key, dag.Outcome{Status: types.TaskSuccess, Output: b, At: now})
					rels, fails = append(rels, r...), append(fails, f...)
					if done != nil {
						dones = append(dones, *done)
					}
					changed = true
					continue
				}
				if st, ok := statuses.Get(id); ok && types.TaskStatus(st).Terminal() {
					r, f, done := s.completeLocked(g, key, dag.Outcome{
						Status: types.TaskStatus(st),
						Err:    fmt.Sprintf(`{"message":%q,"task_id":%q}`, "output unavailable after crash", n.TaskID),
						At:     now,
					})
					rels, fails = append(rels, r...), append(fails, f...)
					if done != nil {
						dones = append(dones, *done)
					}
					changed = true
					continue
				}
				// Claimed but never placed: re-drive from parent states.
				if parent := failedDAGParent(g, n); parent != nil {
					fails = append(fails, dagFail{
						taskID: n.TaskID, owner: g.Owner, dep: true,
						errJSON: dag.NewDependencyError(g.ID, dag.ChildFailure{
							Key: key, TaskID: n.TaskID, Parent: parent.Key, ParentStatus: taskStatusOfState(parent.State),
						}).JSON(),
					})
					changed = true
				} else if rel, err := s.buildReleaseLocked(g, key); err == nil {
					rels = append(rels, rel)
				} else {
					// Parents not all terminal yet (external still
					// resolving): fall back to Held so the completion
					// hook re-claims it when they land.
					n.State = dag.StateHeld
					n.ReleasedAt = time.Time{}
					changed = true
				}
			case dag.StateHeld:
				if g.Ready(key) {
					g.MarkReleased(key, now)
					if rel, err := s.buildReleaseLocked(g, key); err == nil {
						rels = append(rels, rel)
					} else {
						fails = append(fails, dagFail{
							taskID: n.TaskID, owner: g.Owner,
							errJSON: fmt.Sprintf(`{"message":%q,"dag_id":%q}`, "dag binding failed: "+err.Error(), g.ID),
						})
					}
					changed = true
				} else if parent := failedDAGParent(g, n); parent != nil {
					g.MarkReleased(key, now)
					fails = append(fails, dagFail{
						taskID: n.TaskID, owner: g.Owner, dep: true,
						errJSON: dag.NewDependencyError(g.ID, dag.ChildFailure{
							Key: key, TaskID: n.TaskID, Parent: parent.Key, ParentStatus: taskStatusOfState(parent.State),
						}).JSON(),
					})
					changed = true
				}
			}
		}
		if changed {
			s.persistDAGLocked(g)
		}
	}
	s.dagMu.Unlock()

	for _, st := range stales {
		status := types.TaskSuccess
		if res, err := wire.DecodeResult(st.value); err == nil {
			status = terminalStatusOf(res)
		}
		if _, after := s.applyDAGResult(st.id, status, "", st.value); after != nil {
			after()
		}
	}
	s.executeDAGActions(rels, fails, dones)
	for _, ext := range externals {
		s.resolveExternalParent(ext.id, ext.key)
	}
}

// failedDAGParent returns a non-successful terminal parent of n, if any.
func failedDAGParent(g *dag.Graph, n *dag.Node) *dag.Node {
	for _, dep := range n.DependsOn {
		if p := g.Node(dep); p != nil && p.State.Terminal() && p.State != dag.StateSuccess {
			return p
		}
	}
	return nil
}

// taskStatusOfState maps a terminal node state back to a task status.
func taskStatusOfState(st dag.State) types.TaskStatus {
	switch st {
	case dag.StateLost:
		return types.TaskLost
	case dag.StateFailed:
		return types.TaskFailed
	default:
		return types.TaskSuccess
	}
}

// traceSampled decides whether a placement records a trace timeline
// under Config.TraceSampleRate. Deterministic by id hash — a DAG's
// nodes key on the graph id, so a workflow's tasks sample as a unit
// and a sampled graph yields a complete cross-node timeline.
func (s *Service) traceSampled(p *preparedSubmission, id types.TaskID) bool {
	rate := s.cfg.TraceSampleRate
	switch {
	case rate == 0 || rate >= 1:
		return true // unset or full: the historical sample-everything
	case rate < 0:
		return false
	}
	key := string(id)
	if p.dagID != "" {
		key = string(p.dagID)
	}
	h := fnv.New64a()
	h.Write([]byte(key)) //nolint:errcheck // hash.Write never fails
	// Top 53 bits → uniform [0,1).
	return float64(h.Sum64()>>11)/float64(uint64(1)<<53) < rate
}
