package service

import (
	"bufio"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"funcx/internal/api"
	"funcx/internal/auth"
	"funcx/internal/types"
	"funcx/internal/wire"
)

// openSSE connects to GET /v1/events, optionally resuming from
// lastEventID, and pumps decoded events into the returned channel
// (closed when the stream ends). The caller must close the response
// body to end the stream.
func openSSE(t *testing.T, srv *httptest.Server, token, lastEventID string) (<-chan types.TaskEvent, *http.Response) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, srv.URL+"/v1/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer "+token)
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("SSE connect = %d", resp.StatusCode)
	}
	ch := make(chan types.TaskEvent, 64)
	go func() {
		defer close(ch)
		sc := bufio.NewScanner(resp.Body)
		var data []byte
		for sc.Scan() {
			line := sc.Text()
			switch {
			case line == "":
				if len(data) > 0 {
					if ev, err := wire.DecodeEvent(data); err == nil {
						ch <- *ev
					}
				}
				data = nil
			case strings.HasPrefix(line, "data:"):
				data = []byte(strings.TrimPrefix(line[5:], " "))
			}
		}
	}()
	return ch, resp
}

// nextEvent reads one event with a timeout.
func nextEvent(t *testing.T, ch <-chan types.TaskEvent) types.TaskEvent {
	t.Helper()
	select {
	case ev, ok := <-ch:
		if !ok {
			t.Fatal("event stream closed early")
		}
		return ev
	case <-time.After(2 * time.Second):
		t.Fatal("timed out waiting for event")
	}
	return types.TaskEvent{}
}

func TestEventStreamDeliversLifecycleWithResult(t *testing.T) {
	svc, srv, token := testService(t)
	fnID, epID := registerFixture(t, srv, token)

	ch, resp := openSSE(t, srv, token, "")
	defer resp.Body.Close()

	var sub api.SubmitResponse
	doJSON(t, srv, token, http.MethodPost, "/v1/tasks",
		api.SubmitRequest{FunctionID: fnID, EndpointID: epID, Payload: []byte("p")}, &sub)

	ev := nextEvent(t, ch)
	if ev.TaskID != sub.TaskID || ev.Status != types.TaskQueued || ev.EndpointID != epID {
		t.Fatalf("first event = %+v", ev)
	}
	completeTask(svc, sub.TaskID, []byte("01\nout"))
	ev = nextEvent(t, ch)
	if ev.TaskID != sub.TaskID || ev.Status != types.TaskSuccess {
		t.Fatalf("terminal event = %+v", ev)
	}
	// The terminal event carries the result inline: no follow-up
	// fetch needed.
	res, err := wire.DecodeResult(ev.Result)
	if err != nil || string(res.Output) != "01\nout" {
		t.Fatalf("inline result = %+v, %v", res, err)
	}
}

func TestEventStreamIsPerUser(t *testing.T) {
	svc, srv, token := testService(t)
	fnID, epID := registerFixture(t, srv, token)
	if err := doJSON(t, srv, token, http.MethodPost, "/v1/functions/"+string(fnID)+"/share",
		api.ShareFunctionRequest{Users: []types.UserID{"bob"}}, nil); err != http.StatusOK {
		t.Fatalf("share = %d", err)
	}

	bob := svc.MintUserToken("bob", auth.ScopeAll)
	bobCh, bobResp := openSSE(t, srv, bob, "")
	defer bobResp.Body.Close()
	aliceCh, aliceResp := openSSE(t, srv, token, "")
	defer aliceResp.Body.Close()

	var sub api.SubmitResponse
	doJSON(t, srv, token, http.MethodPost, "/v1/tasks",
		api.SubmitRequest{FunctionID: fnID, EndpointID: epID}, &sub)
	if ev := nextEvent(t, aliceCh); ev.TaskID != sub.TaskID {
		t.Fatalf("alice missed her event: %+v", ev)
	}
	select {
	case ev := <-bobCh:
		t.Fatalf("bob saw alice's event: %+v", ev)
	case <-time.After(100 * time.Millisecond):
	}
}

// TestSSEResumeNoLossNoDup kills the stream mid-run and reconnects
// with Last-Event-ID: every event published while disconnected must
// arrive exactly once, as long as the replay ring covers the gap.
func TestSSEResumeNoLossNoDup(t *testing.T) {
	svc, srv, token := testService(t)
	fnID, epID := registerFixture(t, srv, token)

	submit := func() types.TaskID {
		var sub api.SubmitResponse
		doJSON(t, srv, token, http.MethodPost, "/v1/tasks",
			api.SubmitRequest{FunctionID: fnID, EndpointID: epID}, &sub)
		return sub.TaskID
	}

	ch, resp := openSSE(t, srv, token, "")
	idA := submit()
	first := nextEvent(t, ch)
	if first.TaskID != idA {
		t.Fatalf("first event = %+v", first)
	}
	// Kill the stream, then generate events while disconnected.
	resp.Body.Close()
	completeTask(svc, idA, []byte("01\na")) // seq 2
	idB := submit()                         // seq 3
	completeTask(svc, idB, []byte("01\nb")) // seq 4

	ch2, resp2 := openSSE(t, srv, token, strconv.FormatUint(first.Seq, 10))
	defer resp2.Body.Close()
	var got []types.TaskEvent
	for i := 0; i < 3; i++ {
		got = append(got, nextEvent(t, ch2))
	}
	// Exactly seqs 2,3,4 in order: nothing lost, nothing duplicated.
	for i, ev := range got {
		if ev.Seq != first.Seq+uint64(i+1) {
			t.Fatalf("resumed seqs = %v (event %d = %+v)", seqsOf(got), i, ev)
		}
	}
	if got[0].TaskID != idA || got[0].Status != types.TaskSuccess ||
		got[1].TaskID != idB || got[1].Status != types.TaskQueued ||
		got[2].TaskID != idB || got[2].Status != types.TaskSuccess {
		t.Fatalf("resumed events = %v", seqsOf(got))
	}
	// Replayed terminal events are trimmed: the ring does not pin
	// result bytes, and clients reconcile them via POST /v1/tasks/wait.
	if len(got[0].Result) != 0 || len(got[2].Result) != 0 {
		t.Fatal("replayed terminal events carried inline result bytes")
	}
	// The stream continues live after the replay.
	idC := submit()
	if ev := nextEvent(t, ch2); ev.TaskID != idC || ev.Seq != first.Seq+4 {
		t.Fatalf("live event after resume = %+v", ev)
	}
}

func seqsOf(evs []types.TaskEvent) []uint64 {
	out := make([]uint64, len(evs))
	for i, ev := range evs {
		out[i] = ev.Seq
	}
	return out
}

// TestSSEResumeGapIsGone shrinks the replay ring so a disconnected
// client's position is evicted: the reconnect must fail with a clear
// 410 rather than silently skipping events.
func TestSSEResumeGapIsGone(t *testing.T) {
	svc := New(Config{HeartbeatPeriod: 50 * time.Millisecond, EventRing: 2})
	t.Cleanup(svc.Close)
	srv := httptest.NewServer(svc)
	t.Cleanup(srv.Close)
	token := svc.MintUserToken("alice", auth.ScopeAll)
	fnID, epID := registerFixture(t, srv, token)

	for i := 0; i < 5; i++ {
		doJSON(t, srv, token, http.MethodPost, "/v1/tasks",
			api.SubmitRequest{FunctionID: fnID, EndpointID: epID}, nil)
	}
	// Ring of 2 holds seqs 4,5. Resuming after 1 needs 2..5: gone.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/events", nil)
	req.Header.Set("Authorization", "Bearer "+token)
	req.Header.Set("Last-Event-ID", "1")
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("gap resume = %d, want 410 Gone", resp.StatusCode)
	}
	// A position the ring still covers resumes fine.
	ch, resp2 := openSSE(t, srv, token, "3")
	defer resp2.Body.Close()
	if ev := nextEvent(t, ch); ev.Seq != 4 {
		t.Fatalf("in-ring resume started at seq %d, want 4", ev.Seq)
	}
}

func TestWaitTasksEndpoint(t *testing.T) {
	svc, srv, token := testService(t)
	fnID, epID := registerFixture(t, srv, token)
	var ids []types.TaskID
	for i := 0; i < 3; i++ {
		var sub api.SubmitResponse
		doJSON(t, srv, token, http.MethodPost, "/v1/tasks",
			api.SubmitRequest{FunctionID: fnID, EndpointID: epID, Payload: []byte{byte(i)}}, &sub)
		ids = append(ids, sub.TaskID)
	}
	completeTask(svc, ids[0], []byte("01\na"))
	completeTask(svc, ids[2], []byte("01\nc"))

	// Non-blocking: the completed subset plus the pending remainder.
	var resp api.WaitTasksResponse
	code := doJSON(t, srv, token, http.MethodPost, "/v1/tasks/wait",
		api.WaitTasksRequest{TaskIDs: ids}, &resp)
	if code != http.StatusOK || len(resp.Results) != 2 || len(resp.Pending) != 1 || resp.Pending[0] != ids[1] {
		t.Fatalf("wait = %d, %+v", code, resp)
	}

	// Blocking: one request parks until the completion lands.
	go func() {
		time.Sleep(50 * time.Millisecond)
		completeTask(svc, ids[1], []byte("01\nb"))
	}()
	start := time.Now()
	var resp2 api.WaitTasksResponse
	code = doJSON(t, srv, token, http.MethodPost, "/v1/tasks/wait",
		api.WaitTasksRequest{TaskIDs: []types.TaskID{ids[1]}, Wait: "2s"}, &resp2)
	if code != http.StatusOK || len(resp2.Results) != 1 || len(resp2.Pending) != 0 {
		t.Fatalf("blocking wait = %d, %+v", code, resp2)
	}
	if time.Since(start) < 40*time.Millisecond {
		t.Fatal("blocking wait returned before completion")
	}
	if string(resp2.Results[0].Output) != "01\nb" {
		t.Fatalf("blocking wait output = %q", resp2.Results[0].Output)
	}
}

func TestWaitTasksValidation(t *testing.T) {
	_, srv, token := testService(t)
	if code := doJSON(t, srv, token, http.MethodPost, "/v1/tasks/wait",
		api.WaitTasksRequest{}, nil); code != http.StatusBadRequest {
		t.Fatalf("empty wait = %d, want 400", code)
	}
	big := make([]types.TaskID, maxWaitBatch+1)
	for i := range big {
		big[i] = types.TaskID(strconv.Itoa(i))
	}
	if code := doJSON(t, srv, token, http.MethodPost, "/v1/tasks/wait",
		api.WaitTasksRequest{TaskIDs: big}, nil); code != http.StatusBadRequest {
		t.Fatalf("oversized wait = %d, want 400", code)
	}
}

// TestWaitersGoneUnifiedOnBus pins the acceptance criterion: blocking
// retrieval leaves no per-connection state behind in the service —
// the event bus's done-registration map drains once waiters return.
func TestWaitersGoneUnifiedOnBus(t *testing.T) {
	svc, srv, token := testService(t)
	fnID, epID := registerFixture(t, srv, token)
	var sub api.SubmitResponse
	doJSON(t, srv, token, http.MethodPost, "/v1/tasks",
		api.SubmitRequest{FunctionID: fnID, EndpointID: epID}, &sub)
	// A timed-out wait must not leak its registration.
	doJSON(t, srv, token, http.MethodPost, "/v1/tasks/wait",
		api.WaitTasksRequest{TaskIDs: []types.TaskID{sub.TaskID}, Wait: "10ms"}, nil)
	completeTask(svc, sub.TaskID, []byte("01\nx"))
	doJSON(t, srv, token, http.MethodGet, "/v1/tasks/"+string(sub.TaskID)+"/result", nil, nil)
	if n := svc.Events.PendingDone(); n != 0 {
		t.Fatalf("done registrations leaked: %d", n)
	}
}
