package service

import (
	"net/http"
	"testing"

	"funcx/internal/api"
	"funcx/internal/auth"
	"funcx/internal/types"
)

// TestRetrievalSurfacesEnforceOwnership: holding a task's capability
// UUID no longer grants access to its result — /v1/tasks/{id}/result
// and /v1/tasks/wait reject ids owned by another user with 404,
// matching the event stream's strict per-user model.
func TestRetrievalSurfacesEnforceOwnership(t *testing.T) {
	svc, srv, aliceTok := testService(t)
	bobTok := svc.MintUserToken("bob", auth.ScopeAll)

	var fnResp api.RegisterFunctionResponse
	if code := doJSON(t, srv, aliceTok, http.MethodPost, "/v1/functions",
		api.RegisterFunctionRequest{Name: "noop", Body: []byte("def noop(): pass")}, &fnResp); code != http.StatusCreated {
		t.Fatalf("register function = %d", code)
	}
	var epResp api.RegisterEndpointResponse
	if code := doJSON(t, srv, aliceTok, http.MethodPost, "/v1/endpoints",
		api.RegisterEndpointRequest{Name: "ep"}, &epResp); code != http.StatusCreated {
		t.Fatalf("register endpoint = %d", code)
	}
	var subResp api.SubmitResponse
	if code := doJSON(t, srv, aliceTok, http.MethodPost, "/v1/tasks", api.SubmitRequest{
		FunctionID: fnResp.FunctionID, EndpointID: epResp.EndpointID, Payload: []byte("{}"),
	}, &subResp); code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	id := string(subResp.TaskID)

	// Bob holds the capability UUID but does not own the task.
	if code := doJSON(t, srv, bobTok, http.MethodGet, "/v1/tasks/"+id+"/result", nil, nil); code != http.StatusNotFound {
		t.Errorf("foreign result fetch = %d, want 404", code)
	}
	if code := doJSON(t, srv, bobTok, http.MethodPost, "/v1/tasks/wait",
		api.WaitTasksRequest{TaskIDs: []types.TaskID{subResp.TaskID}}, nil); code != http.StatusNotFound {
		t.Errorf("foreign wait = %d, want 404", code)
	}

	// The owner keeps full access: the task is queued, so a
	// non-blocking result fetch reports 202 and wait reports pending.
	if code := doJSON(t, srv, aliceTok, http.MethodGet, "/v1/tasks/"+id+"/result", nil, nil); code != http.StatusAccepted {
		t.Errorf("owner result fetch = %d, want 202", code)
	}
	var waitResp api.WaitTasksResponse
	if code := doJSON(t, srv, aliceTok, http.MethodPost, "/v1/tasks/wait",
		api.WaitTasksRequest{TaskIDs: []types.TaskID{subResp.TaskID}}, &waitResp); code != http.StatusOK {
		t.Errorf("owner wait = %d, want 200", code)
	} else if len(waitResp.Pending) != 1 {
		t.Errorf("owner wait pending = %v, want the queued id", waitResp.Pending)
	}

	// Unknown ids behave the same for everyone (no existence leak):
	// wait accepts and reports them pending.
	unknown := types.TaskID(types.NewUUID())
	if code := doJSON(t, srv, bobTok, http.MethodPost, "/v1/tasks/wait",
		api.WaitTasksRequest{TaskIDs: []types.TaskID{unknown}}, nil); code != http.StatusOK {
		t.Errorf("unknown-id wait = %d, want 200", code)
	}
}
