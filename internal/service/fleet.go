// Fleet metrics federation (GET /v1/metrics/fleet): one scrape target
// observing the whole fabric. The serving shard renders its own
// exposition (exemplars on), scatter-gathers every peer's /v1/metrics
// through the gateway hop lane, and merges the documents with
// promtext.Merge — counters and histograms sum across shards, gauges
// keep their per-shard series. A dead shard costs one increment of
// funcx_fleet_scrape_errors_total, never the scrape.
package service

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"time"

	"funcx/internal/promtext"
	"funcx/internal/shard"
)

// fleetScrapeTimeout bounds each peer's share of a fleet scatter-gather.
const fleetScrapeTimeout = 5 * time.Second

// fleetShardLabel is the per-shard label Merge strips from summed
// families — the label promWriter stamps on every sharded series.
const fleetShardLabel = "shard"

// handleFleetMetrics is GET /v1/metrics/fleet.
func (s *Service) handleFleetMetrics(w http.ResponseWriter, r *http.Request) {
	local, err := promtext.Parse(s.renderMetrics(true))
	if err != nil {
		http.Error(w, "service: local exposition invalid: "+err.Error(), http.StatusInternalServerError)
		return
	}
	docs := [][]promtext.Family{local}
	if s.sharded() {
		type peerDoc struct {
			id  shard.ID
			fam []promtext.Family
			err error
		}
		peers := s.cfg.Ring.Peers()
		ch := make(chan peerDoc, len(peers))
		for _, peer := range peers {
			go func(peer shard.Info) {
				fam, err := s.scrapePeerMetrics(r, peer)
				//funcx:ignore boundedchan ch is buffered to len(peers) and each scrape goroutine sends exactly once, so this send can never block.
				ch <- peerDoc{id: peer.ID, fam: fam, err: err}
			}(peer)
		}
		for range peers {
			d := <-ch
			if d.err != nil {
				s.fleetScrapeErrors.Add(1)
				s.log.Warn("fleet metrics scrape failed", "peer", string(d.id), "err", d.err)
				continue
			}
			docs = append(docs, d.fam)
		}
	}
	merged, err := promtext.Merge(docs, fleetShardLabel)
	if err != nil {
		http.Error(w, "service: fleet merge failed: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write([]byte(promtext.Render(merged))) //nolint:errcheck // best-effort scrape response
}

// scrapePeerMetrics fetches and parses one peer's exemplar-annotated
// exposition through the hop lane (the peer re-authenticates the
// caller's forwarded token; the hop marker just keeps the request off
// the redirect path).
func (s *Service) scrapePeerMetrics(r *http.Request, peer shard.Info) ([]promtext.Family, error) {
	ctx, cancel := context.WithTimeout(r.Context(), fleetScrapeTimeout)
	defer cancel()
	req, err := s.buildHopRequest(ctx, r, peer, http.MethodGet, "/v1/metrics?exemplars=1", nil)
	if err != nil {
		return nil, err
	}
	resp, err := s.proxyClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("peer %s: status %d", peer.ID, resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, err
	}
	return promtext.Parse(string(body))
}
