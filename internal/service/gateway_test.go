package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"funcx/internal/api"
	"funcx/internal/auth"
	"funcx/internal/shard"
	"funcx/internal/types"
)

// newShardedService boots one sharded service instance ("shard-a")
// whose ring names a second shard ("shard-b") at an unreachable
// address — enough to exercise every wrong-shard decision locally.
func newShardedService(t *testing.T) (*Service, *httptest.Server, *shard.Directory) {
	t.Helper()
	cfg := shard.Config{
		Shards: []shard.Info{
			{ID: "shard-a", BaseURL: "http://127.0.0.1:1"}, // self URL unused in these tests
			{ID: "shard-b", BaseURL: "http://127.0.0.1:9"}, // nothing listens here
		},
		Seed: 7,
	}
	dir, err := shard.NewDirectory(cfg, "shard-a")
	if err != nil {
		t.Fatal(err)
	}
	svc := New(Config{ShardID: "shard-a", Ring: dir})
	t.Cleanup(svc.Close)
	ts := httptest.NewServer(svc)
	t.Cleanup(ts.Close)
	return svc, ts, dir
}

// mintForeign draws an id owned by the *other* shard.
func mintForeign[T ~string](t *testing.T, dir *shard.Directory, newID func() T, keyOf func(T) string) T {
	t.Helper()
	for i := 0; i < 4096; i++ {
		id := newID()
		if !dir.Owns(keyOf(id)) {
			return id
		}
	}
	t.Fatal("could not mint a foreign-owned id")
	panic("unreachable")
}

// hopHeaders builds a verified hop from the given shard id: header
// plus a matching signed hop token (the test authority shares the
// deployment key, exactly like a real peer shard).
func hopHeaders(svc *Service, from string) map[string]string {
	return map[string]string{
		ShardHopHeader: from,
		ShardHopTokenHeader: svc.Authority.Mint(
			types.UserID("shard:"+from), time.Hour, auth.ScopeShardHop),
	}
}

// replicateHeaders marks a request as replication-lane traffic: the
// function-replica surfaces accept only this scope, not hop tokens.
func replicateHeaders(svc *Service, from string) map[string]string {
	return map[string]string{
		ShardHopHeader: from,
		ShardHopTokenHeader: svc.Authority.Mint(
			types.UserID("shard:"+from), time.Hour, auth.ScopeShardReplicate),
	}
}

func doRequest(t *testing.T, method, url, token string, hop map[string]string, body any) *http.Response {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer "+token)
	for k, v := range hop {
		req.Header.Set(k, v)
	}
	// No redirect following: the tests inspect the raw gateway answer.
	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// A hop-marked request for a key this shard does not own must be
// answered 421 and never re-proxied (the redirect loop guard).
func TestGatewayHopGuard(t *testing.T) {
	svc, ts, dir := newShardedService(t)
	token := svc.MintUserToken("u1")
	foreign := mintForeign(t, dir, types.NewTaskID, shard.TaskKey)

	resp := doRequest(t, http.MethodGet, ts.URL+"/v1/tasks/"+string(foreign)+"/result", token, hopHeaders(svc, "shard-b"), nil)
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("hop-marked wrong-shard result fetch: got %d, want 421", resp.StatusCode)
	}
	// Scatter surfaces guard too: a forwarded wait containing foreign
	// ids means the rings disagree.
	resp = doRequest(t, http.MethodPost, ts.URL+"/v1/tasks/wait", token, hopHeaders(svc, "shard-b"),
		api.WaitTasksRequest{TaskIDs: []types.TaskID{foreign}})
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("hop-marked wrong-shard wait: got %d, want 421", resp.StatusCode)
	}
}

// A public request for a foreign key is proxied; with the owner down
// the gateway reports 502 rather than hanging or serving a wrong
// answer.
func TestGatewayProxyUnreachableOwner(t *testing.T) {
	svc, ts, dir := newShardedService(t)
	token := svc.MintUserToken("u1")
	foreign := mintForeign(t, dir, types.NewTaskID, shard.TaskKey)

	resp := doRequest(t, http.MethodGet, ts.URL+"/v1/tasks/"+string(foreign)+"/result", token, nil, nil)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("proxy to dead shard: got %d, want 502", resp.StatusCode)
	}
	stats := svc.StatsSnapshot()
	if stats.Proxied != 1 {
		t.Fatalf("proxied counter = %d, want 1", stats.Proxied)
	}
}

// Browser-facing surfaces redirect to the owner's URL instead of
// proxying.
func TestGatewayRedirectsStatusSurfaces(t *testing.T) {
	svc, ts, dir := newShardedService(t)
	token := svc.MintUserToken("u1")
	foreignTask := mintForeign(t, dir, types.NewTaskID, shard.TaskKey)

	resp := doRequest(t, http.MethodGet, ts.URL+"/v1/tasks/"+string(foreignTask), token, nil, nil)
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("foreign task status: got %d, want 307", resp.StatusCode)
	}
	wantLoc := "http://127.0.0.1:9/v1/tasks/" + string(foreignTask)
	if loc := resp.Header.Get("Location"); loc != wantLoc {
		t.Fatalf("redirect location %q, want %q", loc, wantLoc)
	}
	stats := svc.StatsSnapshot()
	if stats.Redirected != 1 {
		t.Fatalf("redirected counter = %d, want 1", stats.Redirected)
	}
}

// Wait requests mixing local and foreign ids scatter: the dead peer's
// ids come back pending instead of failing the whole request.
func TestGatewayWaitScatterDeadShardPendsIDs(t *testing.T) {
	svc, ts, dir := newShardedService(t)
	token := svc.MintUserToken("u1")
	foreign := mintForeign(t, dir, types.NewTaskID, shard.TaskKey)
	local := shard.MintAligned(dir, types.NewTaskID, shard.TaskKey)

	resp := doRequest(t, http.MethodPost, ts.URL+"/v1/tasks/wait", token, nil,
		api.WaitTasksRequest{TaskIDs: []types.TaskID{foreign, local}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scatter wait: got %d, want 200", resp.StatusCode)
	}
	var wr api.WaitTasksResponse
	if err := json.NewDecoder(resp.Body).Decode(&wr); err != nil {
		t.Fatal(err)
	}
	if len(wr.Results) != 0 || len(wr.Pending) != 2 {
		t.Fatalf("scatter wait results=%d pending=%d, want 0/2", len(wr.Results), len(wr.Pending))
	}
}

// Clients must not be able to smuggle replication requests: function_id
// without a hop header is rejected, and a hop-marked replica cannot
// overwrite a record another user owns.
func TestGatewayFunctionReplicaGuards(t *testing.T) {
	svc, ts, _ := newShardedService(t)
	owner := svc.MintUserToken("owner")
	attacker := svc.MintUserToken("attacker")

	// Legitimate local registration by owner.
	var reg api.RegisterFunctionResponse
	resp := doRequest(t, http.MethodPost, ts.URL+"/v1/functions", owner, nil,
		api.RegisterFunctionRequest{Name: "f", Body: []byte("def f():\n    return 1\n")})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil {
		t.Fatal(err)
	}

	// function_id from a public client: rejected.
	resp = doRequest(t, http.MethodPost, ts.URL+"/v1/functions", attacker, nil,
		api.RegisterFunctionRequest{Name: "f", Body: []byte("evil"), FunctionID: reg.FunctionID})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("public function_id: got %d, want 400", resp.StatusCode)
	}
	// A request-gateway hop token must not open the replication lane:
	// the surface is gated on the dedicated replicate scope.
	resp = doRequest(t, http.MethodPost, ts.URL+"/v1/functions", owner, hopHeaders(svc, "shard-b"),
		api.RegisterFunctionRequest{Name: "f", Body: []byte("evil"), FunctionID: reg.FunctionID})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("hop token on replica surface: got %d, want 400", resp.StatusCode)
	}
	// Replicate-marked replica for someone else's function id: forbidden.
	resp = doRequest(t, http.MethodPost, ts.URL+"/v1/functions", attacker, replicateHeaders(svc, "shard-b"),
		api.RegisterFunctionRequest{Name: "f", Body: []byte("evil"), FunctionID: reg.FunctionID})
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("replica overwrite by non-owner: got %d, want 403", resp.StatusCode)
	}
	// Replicate-marked replica by the owner installs verbatim.
	otherID := types.NewFunctionID()
	resp = doRequest(t, http.MethodPost, ts.URL+"/v1/functions", owner, replicateHeaders(svc, "shard-b"),
		api.RegisterFunctionRequest{Name: "g", Body: []byte("def g():\n    return 2\n"), FunctionID: otherID})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("replica install: got %d, want 201", resp.StatusCode)
	}
	if fn, err := svc.Registry.Function(otherID); err != nil || fn.Owner != "owner" {
		t.Fatalf("replica not installed with origin id/owner: %v", err)
	}
}

// A sharded service refuses groups whose members live on another
// shard (cross-shard groups are a recorded follow-on).
func TestGatewayCrossShardGroupRejected(t *testing.T) {
	svc, _, dir := newShardedService(t)
	// One local endpoint, then forge a member id owned by shard-b.
	ep, _, _, _, err := svc.RegisterEndpoint("u1", "local-ep", "", false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !dir.Owns(shard.EndpointKey(ep.ID)) {
		t.Fatalf("registered endpoint not ring-aligned to its shard")
	}
	foreign := mintForeign(t, dir, types.NewEndpointID, shard.EndpointKey)
	_, err = svc.CreateGroup("u1", "mixed", "", false, []types.GroupMember{
		{EndpointID: ep.ID}, {EndpointID: foreign},
	})
	if err == nil {
		t.Fatal("cross-shard group accepted")
	}
	if got := fmt.Sprint(err); !bytes.Contains([]byte(got), []byte("cross-shard")) {
		t.Fatalf("unexpected error: %v", err)
	}
}

// A forged hop header (no valid hop token) must NOT open the internal
// lane: the request is treated as public — proxied like any other
// wrong-shard arrival, never granted 421 semantics, replica installs,
// or the limiter bypass.
func TestGatewayForgedHopHeaderIsPublic(t *testing.T) {
	svc, ts, dir := newShardedService(t)
	token := svc.MintUserToken("u1")
	foreign := mintForeign(t, dir, types.NewTaskID, shard.TaskKey)

	// Bare header: proxied (502, dead peer), not 421.
	forged := map[string]string{ShardHopHeader: "shard-b"}
	resp := doRequest(t, http.MethodGet, ts.URL+"/v1/tasks/"+string(foreign)+"/result", token, forged, nil)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("forged hop header: got %d, want 502 (public proxy path)", resp.StatusCode)
	}
	// A user token in the hop-token slot must not verify as a hop.
	forged[ShardHopTokenHeader] = token
	resp = doRequest(t, http.MethodGet, ts.URL+"/v1/tasks/"+string(foreign)+"/result", token, forged, nil)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("user token as hop token: got %d, want 502", resp.StatusCode)
	}
	// Nor can a forged hop smuggle a function replica.
	resp = doRequest(t, http.MethodPost, ts.URL+"/v1/functions", token, forged,
		api.RegisterFunctionRequest{Name: "f", Body: []byte("evil"), FunctionID: types.NewFunctionID()})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("forged-hop replica install: got %d, want 400", resp.StatusCode)
	}
}
