package shard

import (
	"fmt"
	"testing"

	"funcx/internal/types"
)

func testConfig(n int) Config {
	cfg := Config{Seed: 42}
	for i := 0; i < n; i++ {
		cfg.Shards = append(cfg.Shards, Info{
			ID:      ID(fmt.Sprintf("shard-%d", i)),
			BaseURL: fmt.Sprintf("http://127.0.0.1:%d", 9000+i),
		})
	}
	return cfg
}

func sampleKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = GroupKey(types.GroupID(fmt.Sprintf("group-%d", i)))
	}
	return keys
}

// The ring must be a pure function of its config: two builds (e.g.
// across a shard restart) agree on every key, and shard order in the
// config must not matter.
func TestRingDeterministicAcrossRestarts(t *testing.T) {
	cfg := testConfig(5)
	a, err := NewRing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	shuffled := cfg
	shuffled.Shards = []Info{cfg.Shards[3], cfg.Shards[0], cfg.Shards[4], cfg.Shards[1], cfg.Shards[2]}
	c, err := NewRing(shuffled)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range sampleKeys(2000) {
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("rebuild disagrees on %q: %s vs %s", key, a.Owner(key), b.Owner(key))
		}
		if a.Owner(key) != c.Owner(key) {
			t.Fatalf("shard order changed ownership of %q", key)
		}
	}
}

// A different seed must yield a different ring (the seed is part of
// the deployment identity).
func TestRingSeedChangesAssignment(t *testing.T) {
	cfg := testConfig(4)
	a, _ := NewRing(cfg)
	cfg2 := cfg
	cfg2.Seed = 43
	b, _ := NewRing(cfg2)
	moved := 0
	keys := sampleKeys(1000)
	for _, key := range keys {
		if a.Owner(key) != b.Owner(key) {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("changing the seed moved no keys")
	}
}

// Removing one shard must move only the keys that shard owned: every
// key owned by a survivor keeps its owner (consistent hashing's
// minimal-movement property). LoadFactor 2 guarantees the bounded-load
// guard stays a no-op, where the property is exact.
func TestRingRebalanceMovesOnlyChangedNode(t *testing.T) {
	cfg := testConfig(5)
	cfg.LoadFactor = 2
	full, err := NewRing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	removed := ID("shard-2")
	smaller := cfg
	smaller.Shards = nil
	for _, s := range cfg.Shards {
		if s.ID != removed {
			smaller.Shards = append(smaller.Shards, s)
		}
	}
	reduced, err := NewRing(smaller)
	if err != nil {
		t.Fatal(err)
	}
	keys := sampleKeys(5000)
	movedFromRemoved := 0
	for _, key := range keys {
		before, after := full.Owner(key), reduced.Owner(key)
		if before == removed {
			movedFromRemoved++
			if after == removed {
				t.Fatalf("key %q still assigned to removed shard", key)
			}
			continue
		}
		if before != after {
			t.Fatalf("key %q moved %s -> %s though its owner survived", key, before, after)
		}
	}
	if movedFromRemoved == 0 {
		t.Fatal("sample had no keys on the removed shard; enlarge the sample")
	}
}

// The bounded-load guard must cap every shard's hash-space share at
// LoadFactor/N, even from a deliberately skewed starting ring.
func TestRingBoundedLoad(t *testing.T) {
	cfg := testConfig(4)
	cfg.VirtualNodes = 2 // skewed on purpose
	cfg.LoadFactor = 1.25
	r, err := NewRing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	target := cfg.LoadFactor / float64(len(cfg.Shards))
	for id, share := range r.Shares() {
		if share > target+1e-9 {
			t.Fatalf("shard %s owns %.3f of the hash space, above the %.3f bound", id, share, target)
		}
	}
}

func TestRingConfigValidation(t *testing.T) {
	if _, err := NewRing(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	cfg := testConfig(2)
	cfg.Shards[1].ID = cfg.Shards[0].ID
	if _, err := NewRing(cfg); err == nil {
		t.Fatal("duplicate shard id accepted")
	}
	cfg = testConfig(2)
	cfg.LoadFactor = 0.5
	if _, err := NewRing(cfg); err == nil {
		t.Fatal("load factor < 1 accepted")
	}
}

// Key namespaces must keep identical id strings apart.
func TestKeyNamespaces(t *testing.T) {
	d, err := NewDirectory(testConfig(7), "shard-0")
	if err != nil {
		t.Fatal(err)
	}
	id := "aaaaaaaa-bbbb-cccc-dddd-eeeeeeeeeeee"
	owners := map[ID]bool{
		d.Owner(GroupKey(types.GroupID(id))).ID:       true,
		d.Owner(UserKey(types.UserID(id))).ID:         true,
		d.Owner(EndpointKey(types.EndpointID(id))).ID: true,
		d.Owner(TaskKey(types.TaskID(id))).ID:         true,
	}
	if len(owners) < 2 {
		t.Fatal("all four key namespaces landed on one shard; namespacing is suspect")
	}
}

func TestDirectorySelfAndPeers(t *testing.T) {
	cfg := testConfig(3)
	d, err := NewDirectory(cfg, "shard-1")
	if err != nil {
		t.Fatal(err)
	}
	if d.Self().BaseURL != "http://127.0.0.1:9001" {
		t.Fatalf("self url %q", d.Self().BaseURL)
	}
	if len(d.Peers()) != 2 {
		t.Fatalf("peers %v", d.Peers())
	}
	for _, p := range d.Peers() {
		if p.ID == d.SelfID() {
			t.Fatal("self listed as peer")
		}
	}
	if _, err := NewDirectory(cfg, "nope"); err == nil {
		t.Fatal("unknown self accepted")
	}
}

// MintAligned must return ids this shard owns, and every other shard's
// directory must agree on that ownership.
func TestMintAlignedAgreesAcrossShards(t *testing.T) {
	cfg := testConfig(3)
	dirs := make([]*Directory, 3)
	for i := range dirs {
		var err error
		dirs[i], err = NewDirectory(cfg, ID(fmt.Sprintf("shard-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
	}
	for i, d := range dirs {
		for j := 0; j < 50; j++ {
			id := MintAligned(d, types.NewTaskID, TaskKey)
			if !d.Owns(TaskKey(id)) {
				t.Fatalf("shard %d minted a task id it does not own", i)
			}
			for _, other := range dirs {
				if other.Owner(TaskKey(id)).ID != d.SelfID() {
					t.Fatalf("shard directories disagree on owner of minted id")
				}
			}
		}
	}
}
