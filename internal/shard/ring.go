// Package shard implements cross-service sharding for the funcX
// control plane: a consistent-hash ring that deterministically assigns
// ownership of groups, users, and direct-endpoint ids to one of N
// service shards, plus the shard directory every shard loads at boot.
//
// The journal version of funcX (2209.11631) scales its web-service
// tier horizontally behind a load balancer: any instance is a valid
// front door, and instances share nothing but the backing stores. This
// reproduction keeps each shard fully shared-nothing (its own
// registry, store, event bus, and forwarders) and instead makes
// ownership computable from the id alone: every shard derives the same
// ring from the same seeded config, and shards mint record ids that
// hash to themselves, so a request arriving at the wrong shard can be
// proxied or redirected to its owner without any shared lookup table
// (see service's gateway layer).
//
// The ring uses virtual nodes for spread and a bounded-load guard: at
// build time, while any shard owns more than LoadFactor/N of the hash
// space, extra virtual nodes are added (deterministically) for the
// most underloaded shard. With the default virtual-node count the
// guard is a no-op and the ring keeps the classic consistent-hashing
// minimal-movement property: removing a shard moves only the keys it
// owned.
package shard

import (
	"errors"
	"fmt"
	"sort"

	"funcx/internal/types"
)

// ID names one service shard (e.g. "shard-0"). It is part of the ring
// config, not derived from the shard's address, so a shard can move
// hosts without changing ownership.
type ID string

// Info locates one shard: its ring identity and the base URL of its
// REST API, which the cross-shard gateway proxies and redirects to.
type Info struct {
	ID ID `json:"id"`
	// BaseURL is the shard's REST API root (e.g. "http://10.0.0.2:8080").
	BaseURL string `json:"base_url"`
}

// Config is the seeded ring configuration. Every shard must load an
// identical Config (same shards in any order, same seed, same tuning)
// or ownership decisions diverge and the gateway's loop guard trips.
type Config struct {
	// Shards lists every shard in the deployment.
	Shards []Info `json:"shards"`
	// VirtualNodes is the per-shard virtual-node count (default 128).
	// More nodes smooth the hash-space split at the cost of ring size.
	VirtualNodes int `json:"virtual_nodes,omitempty"`
	// Seed perturbs the ring's hash function; all shards must agree.
	Seed int64 `json:"seed,omitempty"`
	// LoadFactor is the bounded-load guard c (≥ 1): at build time no
	// shard may own more than c/N of the hash space, enforced by
	// deterministically adding virtual nodes for underloaded shards.
	// Default 1.25. Values large enough (e.g. 2 with the default
	// virtual-node count) make the guard a no-op, preserving the exact
	// minimal-movement property across membership changes.
	LoadFactor float64 `json:"load_factor,omitempty"`
}

func (c Config) withDefaults() Config {
	if c.VirtualNodes <= 0 {
		c.VirtualNodes = 128
	}
	if c.LoadFactor <= 0 {
		c.LoadFactor = 1.25
	}
	return c
}

// point is one virtual node on the ring.
type point struct {
	hash  uint64
	owner ID
}

// Ring is an immutable consistent-hash ring built from a Config. It is
// safe for concurrent use.
type Ring struct {
	cfg    Config
	seed   uint64
	points []point // sorted by hash
	shares map[ID]float64
}

// maxBalanceRounds bounds the bounded-load augmentation: each round
// adds virtual nodes for the most underloaded shard, so convergence is
// fast when LoadFactor is achievable and harmless when it is not.
const maxBalanceRounds = 32

// NewRing builds the ring. It is deterministic: the same Config (with
// Shards in any order) always yields the same assignment of every key.
func NewRing(cfg Config) (*Ring, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Shards) == 0 {
		return nil, errors.New("shard: ring config names no shards")
	}
	if cfg.LoadFactor < 1 {
		return nil, fmt.Errorf("shard: load factor %.2f < 1 is unsatisfiable", cfg.LoadFactor)
	}
	// Canonical shard order: ownership must not depend on config file
	// ordering.
	ids := make([]ID, 0, len(cfg.Shards))
	seen := make(map[ID]bool, len(cfg.Shards))
	for _, s := range cfg.Shards {
		if s.ID == "" {
			return nil, errors.New("shard: ring config contains a shard with no id")
		}
		if seen[s.ID] {
			return nil, fmt.Errorf("shard: duplicate shard id %q in ring config", s.ID)
		}
		seen[s.ID] = true
		ids = append(ids, s.ID)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	r := &Ring{cfg: cfg, seed: splitmix64(uint64(cfg.Seed))}
	replicas := make(map[ID]int, len(ids))
	for _, id := range ids {
		replicas[id] = cfg.VirtualNodes
	}
	r.build(ids, replicas)

	// Bounded-load guard: grow the most underloaded shard until no
	// shard owns more than LoadFactor/N of the hash space (or the
	// round budget runs out — best effort for near-1 factors).
	target := cfg.LoadFactor / float64(len(ids))
	step := max(cfg.VirtualNodes/4, 4)
	for round := 0; round < maxBalanceRounds; round++ {
		maxShare, minID := r.extremes(ids)
		if maxShare <= target {
			break
		}
		replicas[minID] += step
		r.build(ids, replicas)
	}
	return r, nil
}

// build (re)materializes the sorted point list and per-shard shares
// for the given per-shard replica counts.
func (r *Ring) build(ids []ID, replicas map[ID]int) {
	n := 0
	for _, id := range ids {
		n += replicas[id]
	}
	points := make([]point, 0, n)
	for _, id := range ids {
		for i := 0; i < replicas[id]; i++ {
			points = append(points, point{
				hash:  r.hash(fmt.Sprintf("vn|%s|%d", id, i)),
				owner: id,
			})
		}
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].hash != points[j].hash {
			return points[i].hash < points[j].hash
		}
		// Hash ties (vanishingly rare) break by id so the ring is
		// still a pure function of the config.
		return points[i].owner < points[j].owner
	})
	r.points = points

	shares := make(map[ID]float64, len(ids))
	const whole = float64(1<<63) * 2 // 2^64 as float
	for i, p := range points {
		var arc uint64
		if i == 0 {
			arc = points[0].hash - points[len(points)-1].hash // wraps
		} else {
			arc = p.hash - points[i-1].hash
		}
		shares[p.owner] += float64(arc) / whole
	}
	r.shares = shares
}

// extremes returns the largest share and the id of the smallest-share
// shard (ties broken by id order, keeping augmentation deterministic).
func (r *Ring) extremes(ids []ID) (maxShare float64, minID ID) {
	minShare := 2.0
	for _, id := range ids {
		s := r.shares[id]
		if s > maxShare {
			maxShare = s
		}
		if s < minShare {
			minShare, minID = s, id
		}
	}
	return maxShare, minID
}

// Owner returns the shard owning a key: the owner of the first virtual
// node at or clockwise of the key's hash.
func (r *Ring) Owner(key string) ID {
	h := r.hash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].owner
}

// OwnerExcluding returns the shard that owns a key when exclude is
// removed from the ring: the owner of the first virtual node at or
// clockwise of the key's hash belonging to another shard. By the
// minimal-movement property this is exactly where the key's ownership
// lands if exclude leaves, so a draining shard can compute each key's
// successor without rebuilding the ring. On a single-shard ring there
// is nowhere to go and exclude itself is returned.
func (r *Ring) OwnerExcluding(key string, exclude ID) ID {
	h := r.hash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	for n := 0; n < len(r.points); n++ {
		p := r.points[(i+n)%len(r.points)]
		if p.owner != exclude {
			return p.owner
		}
	}
	return exclude
}

// Shares reports the fraction of the hash space each shard owns — the
// quantity the bounded-load guard constrains.
func (r *Ring) Shares() map[ID]float64 {
	out := make(map[ID]float64, len(r.shares))
	for id, s := range r.shares {
		out[id] = s
	}
	return out
}

// Points returns the ring size (total virtual nodes), for diagnostics.
func (r *Ring) Points() int { return len(r.points) }

// hash is seeded FNV-1a 64: deterministic across processes and Go
// versions, unlike hash/maphash.
func (r *Ring) hash(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64) ^ r.seed
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	// Final avalanche so nearby keys spread.
	return splitmix64(h)
}

// splitmix64 is the finalizer of the splitmix64 generator: a cheap,
// well-distributed 64-bit mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// --- ownership key namespaces ---
//
// Keys are namespaced so ids of different kinds can never collide on
// the ring (a group and a user with equal strings still hash apart).

// GroupKey is the ring key for an endpoint group id.
func GroupKey(id types.GroupID) string { return "g:" + string(id) }

// UserKey is the ring key for a user id.
func UserKey(id types.UserID) string { return "u:" + string(id) }

// EndpointKey is the ring key for a direct-endpoint id.
func EndpointKey(id types.EndpointID) string { return "e:" + string(id) }

// TaskKey is the ring key for a task id. Shards mint task ids they own
// (see Directory), so any shard can route a result or wait request for
// a bare task id to its owner.
func TaskKey(id types.TaskID) string { return "t:" + string(id) }

// DAGKey is the ring key for a dependency-graph id. The accepting
// shard mints DAG ids aligned to itself (and mints every node's task
// id locally), so a whole graph lives on one shard and any shard can
// route a status request for a bare DAG id to its owner.
func DAGKey(id types.DAGID) string { return "d:" + string(id) }

// --- directory ---

// Directory is one shard's view of the deployment: the shared ring
// plus its own identity. Every shard loads the same Config at boot and
// differs only in self.
type Directory struct {
	ring *Ring
	self ID
	byID map[ID]Info
	all  []Info
}

// NewDirectory builds a directory for the shard named self, which must
// appear in the config.
func NewDirectory(cfg Config, self ID) (*Directory, error) {
	ring, err := NewRing(cfg)
	if err != nil {
		return nil, err
	}
	d := &Directory{ring: ring, self: self, byID: make(map[ID]Info, len(cfg.Shards))}
	for _, s := range cfg.Shards {
		d.byID[s.ID] = s
		d.all = append(d.all, s)
	}
	sort.Slice(d.all, func(i, j int) bool { return d.all[i].ID < d.all[j].ID })
	if _, ok := d.byID[self]; !ok {
		return nil, fmt.Errorf("shard: self %q not in ring config", self)
	}
	return d, nil
}

// Ring exposes the underlying ring.
func (d *Directory) Ring() *Ring { return d.ring }

// SelfID returns this shard's identity.
func (d *Directory) SelfID() ID { return d.self }

// Self returns this shard's directory entry.
func (d *Directory) Self() Info { return d.byID[d.self] }

// N returns the shard count.
func (d *Directory) N() int { return len(d.all) }

// Shards lists every shard in id order.
func (d *Directory) Shards() []Info { return append([]Info(nil), d.all...) }

// Peers lists every shard except self, in id order.
func (d *Directory) Peers() []Info {
	out := make([]Info, 0, len(d.all)-1)
	for _, s := range d.all {
		if s.ID != d.self {
			out = append(out, s)
		}
	}
	return out
}

// Lookup resolves a shard id to its directory entry.
func (d *Directory) Lookup(id ID) (Info, bool) {
	s, ok := d.byID[id]
	return s, ok
}

// Owner returns the directory entry of the shard owning a key.
func (d *Directory) Owner(key string) Info { return d.byID[d.ring.Owner(key)] }

// Owns reports whether this shard owns the key.
func (d *Directory) Owns(key string) bool { return d.ring.Owner(key) == d.self }

// OwnerExcluding returns the directory entry of the shard that owns a
// key once exclude leaves the ring (see Ring.OwnerExcluding).
func (d *Directory) OwnerExcluding(key string, exclude ID) Info {
	return d.byID[d.ring.OwnerExcluding(key, exclude)]
}

// mintAttempts bounds aligned id minting; with N shards each draw
// lands on self with probability ≈ 1/N, so 256 draws failing is
// astronomically unlikely even on a badly skewed ring.
const mintAttempts = 256

// MintAligned draws fresh ids until the ring assigns one to this
// shard, so ownership of every record a shard creates is computable
// from the id alone. keyOf maps a candidate id to its ring key.
func MintAligned[T ~string](d *Directory, newID func() T, keyOf func(T) string) T {
	var id T
	for i := 0; i < mintAttempts; i++ {
		id = newID()
		if d.Owns(keyOf(id)) {
			return id
		}
	}
	// Unreachable in practice; the caller still gets a valid (if
	// misaligned) id rather than a panic on a pathological ring.
	return id
}
