// Package types defines the identifiers, records, and lifecycle states
// shared by every layer of the funcX fabric: the cloud service, the
// per-endpoint forwarders, and the endpoint agent stack (agent, manager,
// worker). It has no dependencies on any other funcx package so that all
// layers can share it freely.
package types

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"time"
)

// UUID is a 128-bit random identifier rendered in the canonical
// 8-4-4-4-12 hex form, as assigned by the funcX service to functions,
// endpoints, and tasks.
type UUID string

// NewUUID returns a fresh random (version 4 style) identifier.
func NewUUID() UUID {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; treat
		// failure as unrecoverable program state.
		panic(fmt.Sprintf("types: reading random bytes: %v", err))
	}
	b[6] = (b[6] & 0x0f) | 0x40 // version 4
	b[8] = (b[8] & 0x3f) | 0x80 // RFC 4122 variant
	dst := make([]byte, 36)
	hex.Encode(dst[0:8], b[0:4])
	dst[8] = '-'
	hex.Encode(dst[9:13], b[4:6])
	dst[13] = '-'
	hex.Encode(dst[14:18], b[6:8])
	dst[18] = '-'
	hex.Encode(dst[19:23], b[8:10])
	dst[23] = '-'
	hex.Encode(dst[24:36], b[10:16])
	return UUID(dst)
}

// Short returns the first 8 hex characters, for compact logging.
func (u UUID) Short() string {
	if len(u) < 8 {
		return string(u)
	}
	return string(u[:8])
}

// Typed identifiers. They are all UUID strings underneath but distinct
// types so that a task id cannot be passed where a function id belongs.
type (
	// TaskID identifies a single invocation of a function.
	TaskID string
	// FunctionID identifies a registered function.
	FunctionID string
	// EndpointID identifies a registered endpoint.
	EndpointID string
	// UserID identifies a registered user.
	UserID string
	// ManagerID identifies a manager process on one compute node.
	ManagerID string
	// WorkerID identifies a worker within a manager.
	WorkerID string
	// BlockID identifies a provisioned block of resources (a pilot job).
	BlockID string
	// GroupID identifies an endpoint group — a named fleet of
	// endpoints the router places tasks across.
	GroupID string
	// DAGID identifies a submitted dependency graph — a workflow of
	// tasks the service releases as their parents retire (see
	// internal/dag).
	DAGID string
)

// NewTaskID returns a fresh task identifier.
func NewTaskID() TaskID { return TaskID(NewUUID()) }

// NewFunctionID returns a fresh function identifier.
func NewFunctionID() FunctionID { return FunctionID(NewUUID()) }

// NewEndpointID returns a fresh endpoint identifier.
func NewEndpointID() EndpointID { return EndpointID(NewUUID()) }

// NewGroupID returns a fresh endpoint-group identifier.
func NewGroupID() GroupID { return GroupID(NewUUID()) }

// NewDAGID returns a fresh dependency-graph identifier.
func NewDAGID() DAGID { return DAGID(NewUUID()) }

// Short returns the first 8 characters, for compact logging.
func (d DAGID) Short() string { return UUID(d).Short() }

// TaskStatus is the lifecycle state of a task as tracked by the service.
type TaskStatus string

// Task lifecycle states, in the order a healthy task passes through them.
const (
	// TaskPending means the task is stored but not yet queued for an
	// endpoint (transient inside the service).
	TaskPending TaskStatus = "pending"
	// TaskQueued means the task id sits in the endpoint's Redis-style
	// task queue awaiting a live agent.
	TaskQueued TaskStatus = "queued"
	// TaskDispatched means the forwarder has shipped the task to the
	// endpoint agent.
	TaskDispatched TaskStatus = "dispatched"
	// TaskRunning means a worker has begun executing the task.
	TaskRunning TaskStatus = "running"
	// TaskSuccess means the task completed and its result is stored.
	TaskSuccess TaskStatus = "success"
	// TaskFailed means execution raised an error; the serialized error
	// is stored in place of a result.
	TaskFailed TaskStatus = "failed"
	// TaskLost means the delivery layer gave up on the task: its retry
	// budget is exhausted, or it was submitted at-most-once and its
	// endpoint was lost mid-flight. A synthetic result carrying
	// Result.Lost is stored so every retrieval surface resolves.
	TaskLost TaskStatus = "lost"
)

// DAG lifecycle states, published on the owner's event stream with
// TaskID set to the graph id. They are deliberately outside the task
// Terminal() set so task-oriented consumers (SDK streamers, waiters)
// pass them through untouched.
const (
	// DAGRunning means the graph was accepted and its roots released.
	DAGRunning TaskStatus = "dag-running"
	// DAGSuccess means every node in the graph succeeded.
	DAGSuccess TaskStatus = "dag-success"
	// DAGFailed means the graph retired with at least one failed or
	// lost node (dependency failures propagated to its descendants).
	DAGFailed TaskStatus = "dag-failed"
)

// Terminal reports whether the status is final (success, failed, or
// lost).
func (s TaskStatus) Terminal() bool {
	// Every status decides terminality explicitly: adding a status
	// without choosing a side here fails `make lint`. The DAG* values
	// are graph lifecycle markers on the event stream, deliberately
	// never terminal for the task-status machinery.
	//funcx:exhaustive funcx/internal/types.TaskStatus
	switch s {
	case TaskSuccess, TaskFailed, TaskLost:
		return true
	case TaskPending, TaskQueued, TaskDispatched, TaskRunning,
		DAGRunning, DAGSuccess, DAGFailed:
		return false
	}
	return false
}

// TaskEvent is one task lifecycle transition on its owner's event
// stream: the service publishes an event each time a task is placed
// on an endpoint queue ("queued", including failover and reclaim
// re-placements), shipped to the agent ("dispatched"), started by a
// worker ("running", relayed worker → manager → agent → forwarder),
// and retired ("success" / "failed" / "lost", carrying the result).
// Events are delivered over GET /v1/events (SSE) and drive
// POST /v1/tasks/wait.
type TaskEvent struct {
	// Seq orders the event on its owner's stream (1-based, assigned
	// by the event bus). SSE clients resume from the last seq they
	// saw via the Last-Event-ID header.
	Seq    uint64     `json:"seq,omitempty"`
	TaskID TaskID     `json:"task_id"`
	Status TaskStatus `json:"status"`
	// EndpointID is where the task was placed or ran.
	EndpointID EndpointID `json:"endpoint_id,omitempty"`
	// Result carries the wire-encoded result on terminal events, so a
	// streaming client needs no follow-up fetch. Replayed events
	// (Last-Event-ID resume) arrive without it — the replay ring does
	// not pin result bytes — and are reconciled via POST
	// /v1/tasks/wait.
	Result []byte `json:"result,omitempty"`
	// DAGID marks events of tasks running as nodes of a dependency
	// graph (and the graph's own lifecycle events).
	DAGID DAGID `json:"dag_id,omitempty"`
	// Time is when the transition was observed by the service.
	Time time.Time `json:"time,omitzero"`
}

// Terminal reports whether the event retires its task.
func (e *TaskEvent) Terminal() bool { return e.Status.Terminal() }

// ContainerTech enumerates the container technologies funcX supports
// (paper §4.2): Docker for cloud/local, Singularity and Shifter for HPC
// facilities, plus the bare "none" mode that runs in the worker's own
// environment.
type ContainerTech string

// Supported container technologies.
const (
	ContainerNone        ContainerTech = "none"
	ContainerDocker      ContainerTech = "docker"
	ContainerSingularity ContainerTech = "singularity"
	ContainerShifter     ContainerTech = "shifter"
)

// ContainerSpec names the execution environment a function needs: the
// technology plus an image reference. The zero value means "no container":
// run directly in the worker's Python/Go environment.
type ContainerSpec struct {
	Tech  ContainerTech `json:"tech,omitempty"`
	Image string        `json:"image,omitempty"`
}

// IsZero reports whether no container was requested.
func (c ContainerSpec) IsZero() bool {
	return (c.Tech == "" || c.Tech == ContainerNone) && c.Image == ""
}

// Key returns a map key uniquely naming the container environment.
func (c ContainerSpec) Key() string {
	if c.IsZero() {
		return "none"
	}
	return string(c.Tech) + ":" + c.Image
}

// Task is the unit of work: one invocation of a registered function on a
// serialized payload, destined for one endpoint.
type Task struct {
	ID         TaskID        `json:"task_id"`
	FunctionID FunctionID    `json:"function_id"`
	EndpointID EndpointID    `json:"endpoint_id"`
	Owner      UserID        `json:"owner,omitempty"`
	Container  ContainerSpec `json:"container,omitempty"`
	// GroupID, when set, records that the router placed this task on
	// EndpointID on behalf of an endpoint group: if that endpoint dies
	// while the task is still queued, the task is eligible for
	// re-routing to a surviving group member.
	GroupID GroupID `json:"group_id,omitempty"`
	// Selector preserves the submission's label constraints so
	// failover re-routing honors them too.
	Selector map[string]string `json:"selector,omitempty"`
	// Payload is the serialized input arguments (see internal/serial).
	Payload []byte `json:"payload"`
	// BodyHash is the hash of the registered function body, used for
	// memoization keys and worker-side function lookup.
	BodyHash string `json:"body_hash,omitempty"`
	// Memoize requests result caching for this invocation (§4.7;
	// memoization is only used if explicitly set by the user).
	Memoize bool `json:"memoize,omitempty"`
	// BatchN, when positive, marks a user-driven batch task (the
	// fmap of §4.7): Payload packs BatchN serialized argument
	// buffers, the worker loops the function over them, and the
	// result packs BatchN output buffers.
	BatchN int `json:"batch_n,omitempty"`
	// Attempt counts executions of this task (at-least-once delivery
	// means it can exceed 1 after failures).
	Attempt int `json:"attempt,omitempty"`
	// Walltime is the caller's expected execution duration; it extends
	// the dispatch lease so a long-running task is not reclaimed as
	// lost while legitimately executing (0 = lease on heartbeat config
	// alone).
	Walltime time.Duration `json:"walltime,omitempty"`
	// MaxRetries bounds service-side redeliveries after the first
	// dispatch: a task reclaimed more than MaxRetries times lands as
	// TaskLost (0 = the service default budget, or the group's).
	MaxRetries int `json:"max_retries,omitempty"`
	// AtMostOnce opts the task out of dispatched-task reclamation for
	// non-idempotent functions: once shipped to an agent it is never
	// redelivered, and agent loss fails it fast as TaskLost.
	AtMostOnce bool `json:"at_most_once,omitempty"`
	// Submitted is when the service accepted the task.
	Submitted time.Time `json:"submitted,omitzero"`
	// Trace, when set, carries the compact trace context of a sampled
	// task through every fabric layer (see TraceContext).
	Trace *TraceContext `json:"trace,omitempty"`
}

// Traced reports whether the task is sampled for per-stage tracing.
func (t *Task) Traced() bool { return t.Trace != nil && t.Trace.Sampled }

// Result is the outcome of one task execution.
type Result struct {
	TaskID TaskID `json:"task_id"`
	// Output is the serialized return value (nil when Err != "").
	Output []byte `json:"output,omitempty"`
	// Err is a serialized execution error, empty on success.
	Err string `json:"error,omitempty"`
	// Completed is when the worker finished the task.
	Completed time.Time `json:"completed,omitzero"`
	// Timing carries the per-hop latency breakdown (Figure 4).
	Timing Timing `json:"timing,omitzero"`
	// WorkerID records which worker ran the task (diagnostics).
	WorkerID WorkerID `json:"worker_id,omitempty"`
	// Memoized marks results served from the memo cache without
	// execution.
	Memoized bool `json:"memoized,omitempty"`
	// Lost marks a synthetic result manufactured by the delivery layer
	// when it gave up on the task (retry budget exhausted, or agent
	// loss in at-most-once mode). Err carries the explanation; the
	// task's terminal status is TaskLost rather than TaskFailed.
	Lost bool `json:"lost,omitempty"`
	// Trace carries the endpoint-side stage deltas of a sampled task
	// back to the service (see TraceDeltas).
	Trace *TraceDeltas `json:"trace,omitempty"`
}

// Failed reports whether the result carries an execution error.
func (r *Result) Failed() bool { return r.Err != "" }

// Timing is the per-hop latency breakdown of one task, mirroring the
// instrumentation of paper Figure 4:
//
//	TS — web-service time (auth, store in Redis, enqueue)
//	TF — forwarder time (queue pop, ship to endpoint, store result)
//	TE — endpoint time (agent + manager queuing and dispatch)
//	TW — function execution time in the worker
type Timing struct {
	TS time.Duration `json:"ts,omitempty"`
	TF time.Duration `json:"tf,omitempty"`
	TE time.Duration `json:"te,omitempty"`
	TW time.Duration `json:"tw,omitempty"`
}

// Total returns the sum of all recorded components.
func (t Timing) Total() time.Duration { return t.TS + t.TF + t.TE + t.TW }

// Add returns the component-wise sum of two breakdowns.
func (t Timing) Add(o Timing) Timing {
	return Timing{TS: t.TS + o.TS, TF: t.TF + o.TF, TE: t.TE + o.TE, TW: t.TW + o.TW}
}

// Scale returns the breakdown divided by n (for averaging).
func (t Timing) Scale(n int) Timing {
	if n <= 0 {
		return t
	}
	d := time.Duration(n)
	return Timing{TS: t.TS / d, TF: t.TF / d, TE: t.TE / d, TW: t.TW / d}
}

// TraceContext is the compact trace context a sampled task carries
// through the fabric (service → forwarder → agent → manager → worker).
// It travels inside the task frame so every layer can tell, without a
// service round trip, whether the task's lifecycle should be stamped.
type TraceContext struct {
	// Sampled marks the task for per-stage latency tracing: the
	// service records a timeline on its own monotonic clock, and the
	// endpoint stack measures local stage deltas shipped back on the
	// result (TraceDeltas), so cross-machine clock skew never enters
	// a span.
	Sampled bool `json:"sampled,omitempty"`
	// TraceID is the 32-hex-char OpenTelemetry trace id the service
	// derived for this task (keyed by graph id for DAG nodes, task id
	// otherwise), propagated so endpoint-side log records correlate
	// with the service's exported spans by one grep.
	TraceID string `json:"trace_id,omitempty"`
}

// TraceDeltas are the endpoint-side stage durations of one traced
// task. Each component is measured as a local monotonic delta on the
// machine that owns the stage — never as a wall-clock timestamp — and
// shipped back with the result:
//
//	Exec         — function execution in the worker (== Timing.TW)
//	ManagerQueue — manager accept → worker pickup on the node
//	AgentQueue   — agent time outside the manager (queue + scheduling)
type TraceDeltas struct {
	Exec         time.Duration `json:"exec,omitempty"`
	ManagerQueue time.Duration `json:"manager_queue,omitempty"`
	AgentQueue   time.Duration `json:"agent_queue,omitempty"`
}

// Function is the registry record for a registered function (paper §3).
type Function struct {
	ID    FunctionID `json:"function_id"`
	Name  string     `json:"name"`
	Owner UserID     `json:"owner"`
	// Body is the serialized function body. In this reproduction it is
	// the registered source text whose hash selects a Go closure in the
	// worker's function runtime.
	Body []byte `json:"body"`
	// BodyHash is the SHA-256 of Body, assigned at registration.
	BodyHash string `json:"body_hash"`
	// Container optionally pins an execution environment.
	Container ContainerSpec `json:"container,omitempty"`
	// SharedWith lists users allowed to invoke the function in
	// addition to the owner ("*" shares publicly).
	SharedWith []UserID `json:"shared_with,omitempty"`
	// Version increments on each update by the owner.
	Version int `json:"version"`
	// Registered is the registration time.
	Registered time.Time `json:"registered,omitzero"`
}

// InvocableBy reports whether uid may invoke the function.
func (f *Function) InvocableBy(uid UserID) bool {
	if uid == f.Owner {
		return true
	}
	for _, s := range f.SharedWith {
		if s == uid || s == "*" {
			return true
		}
	}
	return false
}

// User is the registry record for a registered user identity (the
// stand-in for a Globus Auth federated identity).
type User struct {
	ID UserID `json:"user_id"`
	// Name is a display name.
	Name string `json:"name,omitempty"`
	// Identity names the upstream identity provider identity
	// (e.g. "institution", "google", "orcid").
	Identity string `json:"identity,omitempty"`
	// Registered is the registration time.
	Registered time.Time `json:"registered,omitzero"`
}

// Endpoint is the registry record for a registered endpoint (paper §3).
type Endpoint struct {
	ID          EndpointID `json:"endpoint_id"`
	Name        string     `json:"name"`
	Description string     `json:"description,omitempty"`
	Owner       UserID     `json:"owner"`
	// Public endpoints accept tasks from any authenticated user.
	Public bool `json:"public,omitempty"`
	// Labels are capability/locality tags declared at registration
	// (e.g. "gpu":"a100", "site":"anl"); the router's label-affinity
	// policy and per-task selectors match against them.
	Labels map[string]string `json:"labels,omitempty"`
	// Registered is the registration time.
	Registered time.Time `json:"registered,omitzero"`
}

// GroupMember names one endpoint inside a group, with an optional
// static placement weight (used by the weighted queue-depth policy;
// zero means "derive from live worker count").
type GroupMember struct {
	EndpointID EndpointID `json:"endpoint_id"`
	Weight     int        `json:"weight,omitempty"`
}

// EndpointGroup is the registry record for an endpoint group: a named
// fleet of endpoints submissions may target instead of a concrete
// endpoint, leaving placement to the service's router.
type EndpointGroup struct {
	ID    GroupID `json:"group_id"`
	Name  string  `json:"name"`
	Owner UserID  `json:"owner"`
	// Policy names the placement policy (see internal/router).
	Policy string `json:"policy"`
	// Public groups accept tasks from any authenticated user.
	Public bool `json:"public,omitempty"`
	// Members are the candidate endpoints, in registration order.
	Members []GroupMember `json:"members"`
	// RetryBudget is the group's default per-task redelivery budget:
	// tasks placed through the group that do not set their own
	// MaxRetries are reclaimed at most this many times before landing
	// as TaskLost (0 = the service default).
	RetryBudget int `json:"retry_budget,omitempty"`
	// Elastic, when set, opts the group into the service's fleet
	// autoscaling controller (see internal/elastic).
	Elastic *ElasticSpec `json:"elastic,omitempty"`
	// Registered is the creation time.
	Registered time.Time `json:"registered,omitzero"`
}

// HasMember reports whether id is a member of the group.
func (g *EndpointGroup) HasMember(id EndpointID) bool {
	for _, m := range g.Members {
		if m.EndpointID == id {
			return true
		}
	}
	return false
}

// EndpointStatus is a point-in-time snapshot of an endpoint reported by
// its forwarder to the service.
type EndpointStatus struct {
	ID        EndpointID `json:"endpoint_id"`
	Connected bool       `json:"connected"`
	// OutstandingTasks counts tasks dispatched but not yet completed.
	OutstandingTasks int `json:"outstanding_tasks"`
	// QueuedTasks counts tasks waiting in the service-side queue.
	QueuedTasks int `json:"queued_tasks"`
	// Managers is the number of live managers.
	Managers int `json:"managers"`
	// Workers is the total worker (container) count across managers.
	Workers int `json:"workers"`
	// IdleWorkers is the number of workers without an assigned task.
	IdleWorkers int `json:"idle_workers"`
	// LiveBlocks counts the provider blocks (pilot jobs) with booted
	// nodes at an elastic endpoint (0 for static endpoints).
	LiveBlocks int `json:"live_blocks,omitempty"`
	// PendingBlocks counts blocks requested but not fully booted:
	// capacity already on the way. The elasticity controller's
	// cold-start-aware strategy discounts members whose capacity is
	// arriving so it does not over-ask during boot windows.
	PendingBlocks int `json:"pending_blocks,omitempty"`
	// LastHeartbeat is the time of the most recent agent heartbeat.
	LastHeartbeat time.Time `json:"last_heartbeat,omitzero"`
}

// Backlog is the endpoint's total uncompleted work: tasks queued at
// the service plus tasks dispatched but unfinished.
func (s *EndpointStatus) Backlog() int {
	return s.QueuedTasks + s.OutstandingTasks
}

// ElasticSpec is a group's fleet-elasticity configuration: when set on
// an EndpointGroup, the service's autoscaling controller periodically
// snapshots group-wide backlog and pushes per-member ScalingAdvice to
// the endpoint agents (see internal/elastic).
type ElasticSpec struct {
	// Strategy names the advice strategy ("proportional", "watermark",
	// "coldstart"); empty selects the default.
	Strategy string `json:"strategy,omitempty"`
	// TasksPerBlock is the backlog one provisioned block is expected
	// to absorb (default 1): the divisor converting group backlog into
	// a block target.
	TasksPerBlock int `json:"tasks_per_block,omitempty"`
	// MaxBlocksPerMember caps the advised target per member (0 = rely
	// solely on each endpoint's own MaxBlocks clamp).
	MaxBlocksPerMember int `json:"max_blocks_per_member,omitempty"`
	// HighWater is the per-block backlog ratio above which the
	// watermark strategy advises scale-out (default 2).
	HighWater float64 `json:"high_water,omitempty"`
	// LowWater is the per-block backlog ratio below which the
	// watermark strategy counts an evaluation toward scale-in
	// (default 0.5).
	LowWater float64 `json:"low_water,omitempty"`
	// Hysteresis is how many consecutive low-water evaluations the
	// watermark strategy requires before advising scale-in (default 3).
	Hysteresis int `json:"hysteresis,omitempty"`
	// AdviceTTL bounds advice validity; endpoints receiving no fresh
	// advice within the TTL decay back to their local policy (default:
	// a few heartbeat periods, set by the service).
	AdviceTTL time.Duration `json:"advice_ttl,omitempty"`
}

// ScalingAdvice is the elasticity controller's capacity recommendation
// for one endpoint, pushed to the agent piggybacked on forwarder
// heartbeats. Advice is advisory, never authoritative: the endpoint
// clamps TargetBlocks to its own ScalingPolicy Min/MaxBlocks, and
// advice older than TTL decays back to the local policy.
type ScalingAdvice struct {
	EndpointID EndpointID `json:"endpoint_id"`
	// GroupID names the group whose backlog produced the advice.
	GroupID GroupID `json:"group_id,omitempty"`
	// TargetBlocks is the recommended provisioned (live + pending)
	// block count.
	TargetBlocks int `json:"target_blocks"`
	// Seq increments with each controller evaluation, so receivers can
	// discard reordered advice.
	Seq uint64 `json:"seq,omitempty"`
	// Issued is when the controller computed the advice.
	Issued time.Time `json:"issued,omitzero"`
	// TTL bounds validity after Issued (receivers judge staleness from
	// their own receipt time, so clock skew cannot pin stale advice).
	TTL time.Duration `json:"ttl,omitempty"`
}

// Capacity is a manager's advertisement to its agent: how many tasks it
// can accept now (and, with prefetching, in the near future) per deployed
// container type (paper §4.3, §4.7).
type Capacity struct {
	ManagerID ManagerID `json:"manager_id"`
	// Free maps container key -> idle workers deployed in that
	// container.
	Free map[string]int `json:"free"`
	// Slots is the number of undeployed worker slots: the manager can
	// deploy a container of any type on demand for each (§4.5).
	Slots int `json:"slots,omitempty"`
	// Prefetch is the additional task count the manager is willing to
	// buffer ahead of worker availability (§4.7).
	Prefetch int `json:"prefetch,omitempty"`
	// Total is the node's worker slot count.
	Total int `json:"total"`
}

// Available returns how many more tasks the manager can absorb for a
// container key right now: matching idle workers, plus on-demand
// deployment slots, plus prefetch headroom.
func (c *Capacity) Available(key string) int {
	return c.Free[key] + c.Slots + c.Prefetch
}
