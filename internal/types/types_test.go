package types

import (
	"regexp"
	"testing"
	"testing/quick"
	"time"
)

var uuidRE = regexp.MustCompile(`^[0-9a-f]{8}-[0-9a-f]{4}-4[0-9a-f]{3}-[89ab][0-9a-f]{3}-[0-9a-f]{12}$`)

func TestNewUUIDFormat(t *testing.T) {
	for i := 0; i < 100; i++ {
		u := NewUUID()
		if !uuidRE.MatchString(string(u)) {
			t.Fatalf("UUID %q not canonical v4", u)
		}
	}
}

func TestUUIDUniqueProperty(t *testing.T) {
	seen := map[UUID]bool{}
	prop := func() bool {
		u := NewUUID()
		if seen[u] {
			return false
		}
		seen[u] = true
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestUUIDShort(t *testing.T) {
	u := UUID("abcdef01-2345")
	if u.Short() != "abcdef01" {
		t.Fatal(u.Short())
	}
	if UUID("ab").Short() != "ab" {
		t.Fatal("short UUID mangled")
	}
}

func TestTaskStatusTerminal(t *testing.T) {
	for status, terminal := range map[TaskStatus]bool{
		TaskPending: false, TaskQueued: false, TaskDispatched: false,
		TaskRunning: false, TaskSuccess: true, TaskFailed: true,
	} {
		if status.Terminal() != terminal {
			t.Fatalf("%s.Terminal() = %v", status, status.Terminal())
		}
	}
}

func TestContainerSpecKey(t *testing.T) {
	if (ContainerSpec{}).Key() != "none" {
		t.Fatal((ContainerSpec{}).Key())
	}
	if !(ContainerSpec{}).IsZero() {
		t.Fatal("zero spec not zero")
	}
	spec := ContainerSpec{Tech: ContainerSingularity, Image: "img.sif"}
	if spec.Key() != "singularity:img.sif" {
		t.Fatal(spec.Key())
	}
	if spec.IsZero() {
		t.Fatal("non-zero spec reported zero")
	}
	if (ContainerSpec{Tech: ContainerNone}).Key() != "none" {
		t.Fatal("explicit none spec key")
	}
}

func TestFunctionInvocableBy(t *testing.T) {
	fn := &Function{Owner: "alice", SharedWith: []UserID{"bob"}}
	if !fn.InvocableBy("alice") || !fn.InvocableBy("bob") || fn.InvocableBy("carol") {
		t.Fatal("sharing semantics wrong")
	}
	open := &Function{Owner: "alice", SharedWith: []UserID{"*"}}
	if !open.InvocableBy("anyone") {
		t.Fatal("star share not honored")
	}
}

func TestResultFailed(t *testing.T) {
	if (&Result{}).Failed() {
		t.Fatal("empty result failed")
	}
	if !(&Result{Err: "x"}).Failed() {
		t.Fatal("errored result not failed")
	}
}

func TestTimingArithmetic(t *testing.T) {
	a := Timing{TS: 1, TF: 2, TE: 3, TW: 4}
	b := Timing{TS: 10, TF: 20, TE: 30, TW: 40}
	sum := a.Add(b)
	if sum != (Timing{TS: 11, TF: 22, TE: 33, TW: 44}) {
		t.Fatalf("Add = %+v", sum)
	}
	if sum.Total() != 110 {
		t.Fatalf("Total = %v", sum.Total())
	}
	if got := b.Scale(10); got != (Timing{TS: 1, TF: 2, TE: 3, TW: 4}) {
		t.Fatalf("Scale = %+v", got)
	}
	if got := b.Scale(0); got != b {
		t.Fatalf("Scale(0) = %+v, want identity", got)
	}
}

func TestCapacityAvailable(t *testing.T) {
	c := Capacity{Free: map[string]int{"none": 2}, Slots: 1, Prefetch: 3}
	if c.Available("none") != 6 {
		t.Fatalf("Available(none) = %d", c.Available("none"))
	}
	if c.Available("docker:x") != 4 {
		t.Fatalf("Available(docker:x) = %d", c.Available("docker:x"))
	}
}

func TestTimingSubZero(t *testing.T) {
	var d time.Duration = (Timing{}).Total()
	if d != 0 {
		t.Fatal("zero timing total nonzero")
	}
}
