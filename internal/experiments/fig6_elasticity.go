package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"funcx/internal/core"
	"funcx/internal/fx"
	"funcx/internal/metrics"
	"funcx/internal/provider"
	"funcx/internal/service"
	"funcx/internal/types"
)

func init() { register("fig6", Figure6) }

// Figure6 reproduces Figure 6: a funcX endpoint on a Kubernetes
// cluster elastically scales pods in response to function load. Three
// sleep functions (1 s, 10 s, 20 s) each run in their own container
// with 0–10 pods; every 120 s the experiment submits one 1 s, five
// 10 s, and twenty 20 s invocations. Pods scale up on arrival and are
// reclaimed when functions complete.
//
// The reproduction compresses time 60x (the paper's 120 s burst period
// becomes 2 s; sleeps scale identically), which preserves the
// pods-track-load shape while keeping the experiment wall-clock short.
func Figure6(opts Options) error {
	const timeScale = 1.0 / 60
	bursts := 3
	if opts.Quick {
		bursts = 2
	}
	period := time.Duration(120 * timeScale * float64(time.Second)) // 2 s

	fab, err := core.NewFabric(core.FabricConfig{
		Service: service.Config{HeartbeatPeriod: 50 * time.Millisecond},
	})
	if err != nil {
		return err
	}
	defer fab.Close()
	client := fab.Client("experimenter")
	ctx := context.Background()

	// One endpoint per function, mirroring "each in its own
	// container" with an independent 0–10 pod budget.
	type fnDef struct {
		name    string
		seconds float64
		count   int
	}
	defs := []fnDef{{"sleep-1s", 1, 1}, {"sleep-10s", 10, 5}, {"sleep-20s", 20, 20}}

	type deployment struct {
		def  fnDef
		ep   *core.Endpoint
		fnID types.FunctionID
		pods *metrics.Series
		load *metrics.Series
		mu   sync.Mutex
		peak int
	}
	var deps []*deployment
	origin := time.Now()
	for i, def := range defs {
		ep, err := fab.AddEndpoint(core.EndpointOptions{
			Name: def.name, Owner: "experimenter",
			Managers: 0, WorkersPerManager: 1, // one worker per pod
			SleepScale:      timeScale,
			BatchDispatch:   true,
			HeartbeatPeriod: 25 * time.Millisecond,
			Seed:            opts.Seed + int64(i),
		})
		if err != nil {
			return err
		}
		d := &deployment{
			def:  def,
			ep:   ep,
			pods: metrics.NewSeriesAt(def.name+" pods", origin),
			load: metrics.NewSeriesAt(def.name+" fns", origin),
		}
		err = ep.EnableElasticity(core.ElasticOptions{
			NewProvider: func(hooks provider.Hooks) provider.Provider {
				return provider.NewK8sSim(10, timeScale, opts.Seed+int64(i), hooks)
			},
			Policy: provider.ScalingPolicy{
				MinBlocks: 0, MaxBlocks: 10, TasksPerNode: 1,
				IdleTimeout:    333 * time.Millisecond, // paper's idle reclaim, time-compressed
				Aggressiveness: 1.0,
			},
			Interval: 20 * time.Millisecond,
			OnScale: func(live, pending, queued, running int) {
				d.pods.Record(float64(live))
				d.load.Record(float64(queued + running))
				d.mu.Lock()
				if live > d.peak {
					d.peak = live
				}
				d.mu.Unlock()
			},
		})
		if err != nil {
			return err
		}
		fnID, err := client.RegisterFunction(ctx, def.name, fx.BodySleep, types.ContainerSpec{}, nil)
		if err != nil {
			return err
		}
		d.fnID = fnID
		deps = append(deps, d)
	}

	// Drive the bursts and wait for completion.
	var wg sync.WaitGroup
	for b := 0; b < bursts; b++ {
		for _, d := range deps {
			for i := 0; i < d.def.count; i++ {
				wg.Add(1)
				go func(d *deployment) {
					defer wg.Done()
					id, err := client.Run(ctx, d.fnID, d.ep.ID, fx.SleepArgs(d.def.seconds))
					if err != nil {
						return
					}
					client.GetResult(ctx, id) //nolint:errcheck
				}(d)
			}
		}
		time.Sleep(period)
	}
	wg.Wait()
	// Let idle timeouts reclaim pods.
	time.Sleep(time.Duration(float64(period) * 0.5))

	// Render: pods per function over time buckets.
	bucket := period / 4
	total := time.Duration(bursts)*period + period/2
	tbl := metrics.NewTable("t (paper s)", "1s fns pods", "10s fns pods", "20s fns pods")
	for t := time.Duration(0); t < total; t += bucket {
		row := []string{fmt.Sprintf("%.0f", t.Seconds()/timeScale)}
		for _, d := range deps {
			row = append(row, fmt.Sprintf("%.0f", d.pods.MaxIn(t, t+bucket)))
		}
		tbl.AddRow(row...)
	}
	fmt.Fprint(opts.out(), tbl.Render())
	for _, d := range deps {
		d.mu.Lock()
		peak := d.peak
		d.mu.Unlock()
		fmt.Fprintf(opts.out(), "%s: peak pods %d (paper: %d, cap 10); pods released after load\n",
			d.def.name, peak, min(d.def.count, 10))
	}
	return nil
}
