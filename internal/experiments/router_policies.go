package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"funcx/internal/core"
	"funcx/internal/fx"
	"funcx/internal/metrics"
	"funcx/internal/router"
	"funcx/internal/service"
	"funcx/internal/types"
)

func init() {
	register("router", RouterPolicies)
}

// RouterPolicies measures the federated task router (the step beyond
// the HPDC 2020 single-endpoint submit model, toward the TPDS 2022
// federated service): four heterogeneous endpoints form one group,
// a uniform stream of 10 ms tasks targets the *group*, and one
// endpoint is killed mid-run. For each placement policy the driver
// reports throughput, mean and tail latency, and how many queued
// tasks the failover path re-routed off the dead endpoint. Every
// task must complete despite the kill (at-least-once preserved).
func RouterPolicies(opts Options) error {
	tasks := 400
	if opts.Quick {
		tasks = 200
	}
	tbl := metrics.NewTable("policy", "tasks", "done", "wall (s)", "tasks/s",
		"mean (ms)", "p50 (ms)", "p95 (ms)", "p99 (ms)", "rerouted")
	for _, policy := range router.Policies() {
		r, err := routerPolicyRun(opts, string(policy), tasks)
		if err != nil {
			return fmt.Errorf("policy %s: %w", policy, err)
		}
		tbl.AddRow(string(policy), fmt.Sprint(tasks), fmt.Sprint(r.done),
			fmt.Sprintf("%.2f", r.wall.Seconds()),
			fmt.Sprintf("%.0f", float64(r.done)/r.wall.Seconds()),
			fmt.Sprintf("%.1f", float64(r.lat.Mean())/float64(time.Millisecond)),
			fmt.Sprintf("%.1f", float64(r.lat.Percentile(50))/float64(time.Millisecond)),
			fmt.Sprintf("%.1f", float64(r.lat.Percentile(95))/float64(time.Millisecond)),
			fmt.Sprintf("%.1f", float64(r.lat.Percentile(99))/float64(time.Millisecond)),
			fmt.Sprint(r.rerouted))
	}
	fmt.Fprint(opts.out(), tbl.Render())
	fmt.Fprintln(opts.out(), "4 heterogeneous endpoints (8/4/4/2 workers); endpoint 0 killed halfway; all tasks must complete on survivors")
	return nil
}

type routerRun struct {
	done     int
	wall     time.Duration
	lat      *metrics.Summary
	rerouted int64
}

// routerPolicyRun boots a fresh 4-endpoint fabric, streams tasks at
// the group under one policy, kills the largest endpoint halfway
// through the submissions, and waits for every result.
func routerPolicyRun(opts Options, policy string, tasks int) (*routerRun, error) {
	fab, err := core.NewFabric(core.FabricConfig{
		Service: service.Config{
			HeartbeatPeriod: 50 * time.Millisecond,
			HeartbeatMisses: 3,
		},
	})
	if err != nil {
		return nil, err
	}
	defer fab.Close()

	// Heterogeneous fleet: one big endpoint, two mid, one small.
	workers := []int{8, 4, 4, 2}
	eps := make([]*core.Endpoint, len(workers))
	for i, w := range workers {
		eps[i], err = fab.AddEndpoint(core.EndpointOptions{
			Name:  fmt.Sprintf("router-ep-%d", i),
			Owner: "experimenter", Managers: 1, WorkersPerManager: w,
			PrewarmWorkers: w, BatchDispatch: true,
			HeartbeatPeriod: 50 * time.Millisecond,
			Labels:          map[string]string{"size": fmt.Sprint(w)},
			Seed:            opts.Seed + int64(i),
		})
		if err != nil {
			return nil, err
		}
	}
	group, err := fab.GroupOf("experimenter", "router-fleet", policy, eps...)
	if err != nil {
		return nil, err
	}
	client := fab.Client("experimenter")
	ctx := context.Background()
	fnID, err := client.RegisterFunction(ctx, "sleep", fx.BodySleep, types.ContainerSpec{}, nil)
	if err != nil {
		return nil, err
	}

	lat := metrics.NewSummary()
	var mu sync.Mutex
	done := 0
	var wg sync.WaitGroup
	args := fx.SleepArgs(0.01) // 10 ms functions
	// Bound result waits so a lost task surfaces as the completion
	// check's error instead of hanging the experiment forever.
	gatherCtx, cancel := context.WithTimeout(ctx, time.Minute)
	defer cancel()
	start := time.Now()
	for i := 0; i < tasks; i++ {
		if i == tasks/2 {
			eps[0].Disconnect() // kill the biggest endpoint mid-run
		}
		submitted := time.Now()
		id, _, err := client.RunAnywhere(ctx, fnID, group.ID, args)
		if err != nil {
			return nil, err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := client.GetResult(gatherCtx, id)
			if err != nil || res.Err != nil {
				return
			}
			mu.Lock()
			lat.Add(time.Since(submitted))
			done++
			mu.Unlock()
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	if done != tasks {
		return nil, fmt.Errorf("only %d/%d tasks completed after endpoint kill", done, tasks)
	}
	return &routerRun{done: done, wall: wall, lat: lat, rerouted: fab.Service.Rerouted()}, nil
}
