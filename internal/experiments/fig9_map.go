package experiments

import (
	"context"
	"fmt"
	"time"

	"funcx/internal/core"
	"funcx/internal/fx"
	"funcx/internal/metrics"
	"funcx/internal/service"
	"funcx/internal/types"
)

func init() { register("fig9", Figure9) }

// Figure9 reproduces Figure 9: strong-scaling throughput of the
// user-driven `map` command. The paper launches 10 million 10 µs
// functions with client and endpoint on one c5n.9xlarge, sweeping
// batch size and worker count, peaking at 1.2 M functions/s. Here the
// same Map path runs over the real in-process fabric: items are
// packed into batch tasks, workers loop the function over each batch,
// and throughput is measured end to end (submission through result
// unpacking).
func Figure9(opts Options) error {
	items := 2_000_000
	workerSweep := []int{4, 8, 16}
	batchSweep := []int{1_000, 10_000, 100_000}
	if opts.Quick {
		items = 200_000
		workerSweep = []int{8}
		batchSweep = []int{10_000}
	}

	tbl := metrics.NewTable("workers", "batch size", "batches", "elapsed (s)", "throughput (fns/s)")
	var peak float64
	for _, workers := range workerSweep {
		fab, err := core.NewFabric(core.FabricConfig{
			// The 100 000-item batches exceed the default 1 MiB
			// payload bound; the paper's single-machine map setup has
			// no such WAN cost concern, so lift the limit.
			Service: service.Config{HeartbeatPeriod: 200 * time.Millisecond, MaxPayloadSize: -1},
		})
		if err != nil {
			return err
		}
		ep, err := fab.AddEndpoint(core.EndpointOptions{
			Name: "map-host", Owner: "experimenter",
			Managers: 1, WorkersPerManager: workers,
			PrewarmWorkers: workers,
			BatchDispatch:  true,
			Prefetch:       workers,
			Seed:           opts.Seed,
		})
		if err != nil {
			fab.Close()
			return err
		}
		client := fab.Client("experimenter")
		ctx := context.Background()
		fnID, err := client.RegisterFunction(ctx, "echo", fx.BodyEcho, types.ContainerSpec{}, nil)
		if err != nil {
			fab.Close()
			return err
		}
		for _, batch := range batchSweep {
			seq := func(yield func(any) bool) {
				for i := 0; i < items; i++ {
					if !yield("x") {
						return
					}
				}
			}
			start := time.Now()
			h, err := client.Map(ctx, fnID, ep.ID, seq, batch, 0)
			if err != nil {
				fab.Close()
				return err
			}
			outs, err := client.MapResults(ctx, h)
			if err != nil {
				fab.Close()
				return err
			}
			elapsed := time.Since(start)
			if len(outs) != items {
				fab.Close()
				return fmt.Errorf("fig9: got %d outputs, want %d", len(outs), items)
			}
			tput := float64(items) / elapsed.Seconds()
			if tput > peak {
				peak = tput
			}
			tbl.AddRow(fmt.Sprint(workers), fmt.Sprint(batch), fmt.Sprint(len(h.TaskIDs)),
				fmt.Sprintf("%.2f", elapsed.Seconds()), fmt.Sprintf("%.0f", tput))
		}
		fab.Close()
	}
	fmt.Fprint(opts.out(), tbl.Render())
	fmt.Fprintf(opts.out(), "peak throughput: %.0f functions/s (paper peak: 1.2M functions/s on 36-core c5n.9xlarge)\n", peak)
	return nil
}
