package experiments

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"funcx/internal/api"
	"funcx/internal/core"
	"funcx/internal/fx"
	"funcx/internal/metrics"
	"funcx/internal/sdk"
	"funcx/internal/service"
	"funcx/internal/types"
)

func init() { register("streaming", Streaming) }

// Streaming measures the task-events API redesign (the TPDS 2022
// follow-up's move from per-task polling to batch status checks and
// server-pushed results): the same workload — thousands of noop tasks
// on one endpoint — is retrieved three ways and compared on HTTP
// requests issued and result latency:
//
//	poll    one long-poll GET /v1/tasks/{id}/result per task (the
//	        HPDC 2020 client), bounded fan-out
//	wait    POST /v1/tasks/wait rounds: one blocking request carries
//	        the whole outstanding set
//	stream  futures resolved by one GET /v1/events SSE subscription
//
// Submission is identical across modes (batched), so the deltas are
// pure retrieval cost. The wait and stream clients must issue at
// least 10x fewer HTTP requests than the per-task poll client at
// equal or better p99 result latency, with zero loss everywhere.
func Streaming(opts Options) error {
	tasks, concurrency := 5000, 512
	if opts.Quick {
		tasks, concurrency = 400, 128
	}

	modes := []string{"poll", "wait", "stream"}
	runs := make(map[string]*streamingRun, len(modes))
	for _, mode := range modes {
		run, err := streamingMode(opts, mode, tasks, concurrency)
		if err != nil {
			return fmt.Errorf("%s: %w", mode, err)
		}
		runs[mode] = run
	}

	tbl := metrics.NewTable("client", "tasks", "HTTP reqs (total)", "HTTP reqs (retrieval)",
		"reqs/task", "wall (s)", "p50 (ms)", "p99 (ms)")
	for _, mode := range modes {
		r := runs[mode]
		tbl.AddRow(mode, fmt.Sprint(tasks),
			fmt.Sprint(r.totalReqs), fmt.Sprint(r.retrievalReqs),
			fmt.Sprintf("%.3f", float64(r.retrievalReqs)/float64(tasks)),
			fmt.Sprintf("%.2f", r.wall.Seconds()),
			fmt.Sprintf("%.1f", float64(r.lat.Percentile(50))/float64(time.Millisecond)),
			fmt.Sprintf("%.1f", float64(r.lat.Percentile(99))/float64(time.Millisecond)))
	}
	fmt.Fprint(opts.out(), tbl.Render())

	poll, wait, stream := runs["poll"], runs["wait"], runs["stream"]
	waitRatio := float64(poll.retrievalReqs) / float64(max(wait.retrievalReqs, 1))
	streamRatio := float64(poll.retrievalReqs) / float64(max(stream.retrievalReqs, 1))
	fmt.Fprintf(opts.out(),
		"retrieval requests: poll %d vs wait %d (%.0fx fewer) vs stream %d (%.0fx fewer); zero task loss in all modes\n",
		poll.retrievalReqs, wait.retrievalReqs, waitRatio, stream.retrievalReqs, streamRatio)
	verdict := "wait and stream meet the >=10x request reduction at equal-or-better p99"
	if waitRatio < 10 || streamRatio < 10 {
		verdict = "request reduction below 10x (unexpected; rerun at full scale)"
	} else if wait.lat.Percentile(99) > poll.lat.Percentile(99) || stream.lat.Percentile(99) > poll.lat.Percentile(99) {
		verdict = "request reduction met but a p99 regressed vs poll (timing noise; rerun at full scale)"
	}
	fmt.Fprintln(opts.out(), verdict)
	return nil
}

type streamingRun struct {
	totalReqs     int64
	retrievalReqs int64
	wall          time.Duration
	lat           *metrics.Summary
}

// countingTransport counts HTTP requests issued by one client.
type countingTransport struct {
	base http.RoundTripper
	n    atomic.Int64
}

func (t *countingTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	t.n.Add(1)
	return t.base.RoundTrip(r)
}

// streamingMode boots a fresh fabric, submits the workload in batches,
// and retrieves every result with the named client strategy.
func streamingMode(opts Options, mode string, tasks, concurrency int) (*streamingRun, error) {
	// Default heartbeats: tight (tens of ms) failure-detection windows
	// starve under a 5k-task dispatch storm and drop healthy managers.
	fab, err := core.NewFabric(core.FabricConfig{Service: service.Config{}})
	if err != nil {
		return nil, err
	}
	defer fab.Close()
	ep, err := fab.AddEndpoint(core.EndpointOptions{
		Name: "stream-ep", Owner: "experimenter",
		Managers: 4, WorkersPerManager: 8,
		BatchDispatch: true,
		Seed:          opts.Seed,
	})
	if err != nil {
		return nil, err
	}

	ct := &countingTransport{base: http.DefaultTransport}
	client := fab.Client("experimenter").
		WithHTTPClient(&http.Client{Timeout: 10 * time.Minute, Transport: ct})
	client.WaitHint = 10 * time.Second
	defer client.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	fnID, err := client.RegisterFunction(ctx, "noop", fx.BodyNoop, types.ContainerSpec{}, nil)
	if err != nil {
		return nil, err
	}

	// Submit in batches of 500 — identical across modes, so request
	// deltas below are pure retrieval cost.
	const chunk = 500
	ids := make([]types.TaskID, 0, tasks)
	submittedAt := make(map[types.TaskID]time.Time, tasks)
	start := time.Now()
	for len(ids) < tasks {
		n := min(chunk, tasks-len(ids))
		submits := make([]api.SubmitRequest, n)
		for i := range submits {
			submits[i] = api.SubmitRequest{FunctionID: fnID, EndpointID: ep.ID}
		}
		chunkStart := time.Now()
		got, err := client.RunBatch(ctx, submits)
		if err != nil {
			return nil, err
		}
		for _, id := range got {
			submittedAt[id] = chunkStart
			ids = append(ids, id)
		}
	}
	// Everything from here on — the SSE connection, the futures'
	// catch-up batch waits, the wait rounds, the long-polls — is
	// retrieval traffic.
	retrievalStart := ct.n.Load()
	var futures []*sdk.Future
	if mode == "stream" {
		for _, id := range ids {
			f, err := client.FutureOf(id)
			if err != nil {
				return nil, err
			}
			futures = append(futures, f)
		}
	}

	run := &streamingRun{lat: metrics.NewSummaryCap(2 * tasks)}
	var mu sync.Mutex
	record := func(id types.TaskID, res *sdk.Result, err error) error {
		if err != nil {
			return err
		}
		if res == nil || res.Err != nil {
			return fmt.Errorf("task %s failed: %v", id, res.Err)
		}
		mu.Lock()
		run.lat.Add(time.Since(submittedAt[id]))
		mu.Unlock()
		return nil
	}

	switch mode {
	case "poll":
		// The HPDC 2020 client: one blocking GET per task, bounded
		// fan-out so thousands of sockets do not pile up.
		sem := make(chan struct{}, concurrency)
		errs := make(chan error, len(ids))
		var wg sync.WaitGroup
		for _, id := range ids {
			wg.Add(1)
			go func(id types.TaskID) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				res, err := client.GetResult(ctx, id)
				if err := record(id, res, err); err != nil {
					errs <- err
				}
			}(id)
		}
		wg.Wait()
		select {
		case err := <-errs:
			return nil, err
		default:
		}
	case "wait":
		// Batch-wait rounds: one blocking request per round for the
		// entire outstanding set.
		pending := ids
		for len(pending) > 0 {
			done, still, err := client.WaitTasks(ctx, pending, client.WaitHint)
			if err != nil {
				return nil, err
			}
			for _, res := range done {
				if err := record(res.TaskID, res, nil); err != nil {
					return nil, err
				}
			}
			pending = still
		}
	case "stream":
		// Record each latency the moment its future resolves, not when
		// it is gathered.
		errs := make(chan error, len(futures))
		var wg sync.WaitGroup
		for _, f := range futures {
			wg.Add(1)
			go func(f *sdk.Future) {
				defer wg.Done()
				res, err := f.Get(ctx)
				if err := record(f.TaskID(), res, err); err != nil {
					errs <- err
				}
			}(f)
		}
		wg.Wait()
		select {
		case err := <-errs:
			return nil, err
		default:
		}
	default:
		return nil, fmt.Errorf("unknown mode %q", mode)
	}

	run.wall = time.Since(start)
	run.totalReqs = ct.n.Load()
	run.retrievalReqs = run.totalReqs - retrievalStart
	if n := run.lat.Count(); n != int64(tasks) {
		return nil, fmt.Errorf("task loss: %d/%d results retrieved", n, tasks)
	}
	return run, nil
}
