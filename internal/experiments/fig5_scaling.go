package experiments

import (
	"fmt"
	"time"

	"funcx/internal/metrics"
	"funcx/internal/scale"
)

func init() {
	register("fig5strong", Figure5Strong)
	register("fig5weak", Figure5Weak)
	register("throughput", Throughput)
	register("batchexec", ExecutorBatchingExp)
	register("fig10", Figure10)
	register("fig11", Figure11)
	register("table3", Table3)
}

// Figure5Strong reproduces Figure 5(a): completion time of 100 000
// concurrent requests as the container count grows, for the no-op and
// 1-second sleep functions on Theta and Cori. The paper's knees —
// no-op stops improving at ~256 containers, sleep at ~2048 — come from
// the manager-per-node and agent-dispatch ceilings of the calibrated
// model.
func Figure5Strong(opts Options) error {
	tasks := 100_000
	if opts.Quick {
		tasks = 20_000
	}
	containers := []int{64, 128, 256, 512, 1024, 2048, 4096, 8192}
	tbl := metrics.NewTable("machine", "function", "containers", "completion (s)", "paper shape")
	shape := map[string]string{
		"theta/noop":  "improves to ~256 ctrs, then flat",
		"theta/sleep": "improves to ~2048 ctrs, then flat",
		"cori/noop":   "similar to Theta",
		"cori/sleep":  "similar to Theta",
	}
	for _, m := range []scale.Model{scale.Theta, scale.Cori} {
		for _, fn := range []struct {
			name string
			dur  time.Duration
		}{{"noop", 0}, {"sleep", time.Second}} {
			results := scale.StrongScaling(m, tasks, fn.dur, containers)
			for i, r := range results {
				note := ""
				if i == 0 {
					note = shape[m.Name+"/"+fn.name]
				}
				tbl.AddRow(m.Name, fn.name, fmt.Sprint(containers[i]),
					fmt.Sprintf("%.1f", r.Completion.Seconds()), note)
			}
		}
	}
	fmt.Fprint(opts.out(), tbl.Render())
	return nil
}

// Figure5Weak reproduces Figure 5(b): completion time with 10 requests
// per container as containers grow — no-op and 1-second sleep on Theta
// and Cori, plus the 1-minute stress function, scaling to the paper's
// headline 131 072 containers / 1.3 M tasks on Cori.
func Figure5Weak(opts Options) error {
	perContainer := 10
	thetaContainers := []int{64, 256, 1024, 4096, 16384}
	coriContainers := []int{256, 1024, 4096, 16384, 65536, 131072}
	if opts.Quick {
		thetaContainers = []int{64, 1024, 16384}
		coriContainers = []int{256, 4096, 131072}
	}
	tbl := metrics.NewTable("machine", "function", "containers", "tasks", "completion (s)", "paper shape")
	funcs := []struct {
		name string
		dur  time.Duration
	}{{"noop", 0}, {"sleep-1s", time.Second}, {"stress-1m", time.Minute}}
	for _, fn := range funcs {
		results := scale.WeakScaling(scale.Theta, perContainer, fn.dur, thetaContainers)
		for i, r := range results {
			note := ""
			if i == 0 {
				note = weakShape(fn.name)
			}
			tbl.AddRow("theta", fn.name, fmt.Sprint(thetaContainers[i]),
				fmt.Sprint(perContainer*thetaContainers[i]),
				fmt.Sprintf("%.1f", r.Completion.Seconds()), note)
		}
	}
	for _, fn := range funcs[:1] { // paper ran only no-op at full Cori scale
		results := scale.WeakScaling(scale.Cori, perContainer, fn.dur, coriContainers)
		for i, r := range results {
			note := ""
			if coriContainers[i] == 131072 {
				note = "paper: 131 072 containers, 1.3M+ tasks"
			}
			tbl.AddRow("cori", fn.name, fmt.Sprint(coriContainers[i]),
				fmt.Sprint(perContainer*coriContainers[i]),
				fmt.Sprintf("%.1f", r.Completion.Seconds()), note)
		}
	}
	fmt.Fprint(opts.out(), tbl.Render())
	return nil
}

func weakShape(fn string) string {
	switch fn {
	case "noop":
		return "grows with containers (distribution cost)"
	case "sleep-1s":
		return "near-constant to ~2048 ctrs"
	default:
		return "near-constant to 16384+ ctrs"
	}
}

// Throughput reproduces §5.2.3: the maximum sustained task throughput
// of a single funcX agent.
func Throughput(opts Options) error {
	tasks := 100_000
	if opts.Quick {
		tasks = 20_000
	}
	tbl := metrics.NewTable("machine", "measured (tasks/s)", "paper (tasks/s)")
	tbl.AddRow("theta", fmt.Sprintf("%.0f", scale.MaxThroughput(scale.Theta, tasks, 1024)), "1694")
	tbl.AddRow("cori", fmt.Sprintf("%.0f", scale.MaxThroughput(scale.Cori, tasks, 1024)), "1466")
	fmt.Fprint(opts.out(), tbl.Render())
	return nil
}

// ExecutorBatchingExp reproduces §5.5.2: 10 000 concurrent no-op
// requests on 4 Theta nodes (64 containers each) with executor-side
// batching enabled versus disabled.
func ExecutorBatchingExp(opts Options) error {
	tasks := 10_000
	if opts.Quick {
		tasks = 2_000
	}
	on := scale.ExecutorBatching(scale.Theta, tasks, 256, true)
	off := scale.ExecutorBatching(scale.Theta, tasks, 256, false)
	tbl := metrics.NewTable("batching", "completion (s)", "paper (s)")
	scaleNote := 1.0
	if opts.Quick {
		scaleNote = float64(tasks) / 10_000
	}
	tbl.AddRow("enabled", fmt.Sprintf("%.1f", on.Seconds()), fmt.Sprintf("%.1f", 6.7*scaleNote))
	tbl.AddRow("disabled", fmt.Sprintf("%.1f", off.Seconds()), fmt.Sprintf("%.1f", 118*scaleNote))
	tbl.AddRow("speedup", fmt.Sprintf("%.1fx", float64(off)/float64(on)), "17.6x")
	fmt.Fprint(opts.out(), tbl.Render())
	return nil
}

// Figure10 reproduces Figure 10: the average latency per request as
// the user-driven batch size grows from 1 to 1024 for the batching
// case studies. Short functions benefit enormously (round-trip
// overhead amortizes); long functions see little change.
func Figure10(opts Options) error {
	// Fixed round-trip overhead: cloud submission, dispatch, and
	// container handoff for one batch (≈2 s in the paper's setup,
	// judging by the asymptotes of Figure 10).
	overhead := 2 * time.Second
	batches := []int{1, 4, 16, 64, 256, 1024}
	tbl := metrics.NewTable("case study", "exec", "b=1", "b=4", "b=16", "b=64", "b=256", "b=1024", "paper shape")
	for _, cs := range []struct {
		name string
		dur  time.Duration
	}{
		{"mnist", 500 * time.Millisecond},
		{"ssx", 1500 * time.Millisecond},
		{"neuro", 8 * time.Second},
		{"xpcs", 50 * time.Second},
	} {
		cells := []string{cs.name, fmtDur(cs.dur)}
		for _, b := range batches {
			cells = append(cells, fmtDur(scale.UserBatchLatency(overhead, cs.dur, b)))
		}
		shape := "flat (exec dominates)"
		if cs.dur < 2*time.Second {
			shape = "drops sharply, flattens by ~b=64"
		}
		cells = append(cells, shape)
		tbl.AddRow(cells...)
	}
	fmt.Fprint(opts.out(), tbl.Render())
	return nil
}

// Figure11 reproduces Figure 11: completion time of 10 000 concurrent
// requests on 4 Theta nodes as the per-node prefetch count grows, for
// no-op, 1 ms, 10 ms, and 100 ms functions. The benefit saturates
// near the per-node container count (64), the paper's stated rule of
// thumb.
func Figure11(opts Options) error {
	tasks := 10_000
	if opts.Quick {
		tasks = 2_000
	}
	prefetches := []int{0, 8, 16, 32, 64, 128, 256, 512}
	tbl := metrics.NewTable("function", "prefetch", "completion (s)", "paper shape")
	for _, fn := range []struct {
		name string
		dur  time.Duration
	}{{"noop", 0}, {"1ms", time.Millisecond}, {"10ms", 10 * time.Millisecond}, {"100ms", 100 * time.Millisecond}} {
		results := scale.PrefetchSweep(scale.Theta, tasks, 256, fn.dur, prefetches)
		for i, c := range results {
			note := ""
			if i == 0 {
				note = "decreases dramatically; knee ≈ 64 (ctrs/node)"
			}
			tbl.AddRow(fn.name, fmt.Sprint(prefetches[i]), fmt.Sprintf("%.2f", c.Seconds()), note)
		}
	}
	fmt.Fprint(opts.out(), tbl.Render())
	return nil
}

// Table3 reproduces Table 3: completion time of 100 000 requests of a
// 1-second doubling function as the fraction of repeated (memoizable)
// requests grows. Paper: 403.8 / 318.5 / 233.6 / 147.9 / 63.2 s.
func Table3(opts Options) error {
	cfg := scale.DefaultMemoConfig()
	if opts.Quick {
		cfg.Tasks = 20_000
	}
	paper := map[int]float64{0: 403.8, 25: 318.5, 50: 233.6, 75: 147.9, 100: 63.2}
	tbl := metrics.NewTable("repeated (%)", "completion (s)", "paper (s)", "note")
	for _, pct := range []int{0, 25, 50, 75, 100} {
		c := cfg
		c.RepeatFraction = float64(pct) / 100
		got := scale.MemoRun(c)
		paperVal := paper[pct]
		if opts.Quick {
			paperVal *= float64(cfg.Tasks) / 100_000
		}
		note := ""
		if pct == 0 {
			note = "model overlaps service+exec; paper's rows are additive"
		}
		tbl.AddRow(fmt.Sprint(pct), fmt.Sprintf("%.1f", got.Seconds()),
			fmt.Sprintf("%.1f", paperVal), note)
	}
	fmt.Fprint(opts.out(), tbl.Render())
	return nil
}
