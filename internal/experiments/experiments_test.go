package experiments

import (
	"strings"
	"testing"
)

// runQuick executes one experiment in quick mode and returns its
// rendered output.
func runQuick(t *testing.T, name string) string {
	t.Helper()
	var sb strings.Builder
	if err := Run(name, Options{Quick: true, Seed: 42, Out: &sb}); err != nil {
		t.Fatalf("experiment %s: %v", name, err)
	}
	return sb.String()
}

func TestNamesComplete(t *testing.T) {
	want := []string{
		"fig1", "table1", "fig4", "fig5strong", "fig5weak", "throughput",
		"fig6", "fig7", "fig8", "table2", "batchexec", "fig9", "fig10",
		"fig11", "table3", "router", "elastic", "streaming", "reliability",
		"sharding", "durability", "latency", "dag",
	}
	names := Names()
	got := map[string]bool{}
	for _, n := range names {
		got[n] = true
	}
	for _, w := range want {
		if !got[w] {
			t.Fatalf("experiment %q not registered (have %v)", w, names)
		}
	}
	if len(names) != len(want) {
		t.Fatalf("registered %d experiments, want %d", len(names), len(want))
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := Run("nope", Options{Quick: true}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestFigure1Output(t *testing.T) {
	out := runQuick(t, "fig1")
	for _, want := range []string{"Xtract", "MNIST", "XPCS", "median"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig1 output missing %q:\n%s", want, out)
		}
	}
}

func TestTable2Output(t *testing.T) {
	out := runQuick(t, "table2")
	for _, want := range []string{"Theta", "Singularity", "Shifter", "Docker", "paper mean"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table2 output missing %q:\n%s", want, out)
		}
	}
}

func TestScaleExperimentsOutput(t *testing.T) {
	for _, name := range []string{"fig5strong", "fig5weak", "throughput", "batchexec", "fig10", "fig11", "table3"} {
		out := runQuick(t, name)
		if !strings.Contains(out, "paper") {
			t.Fatalf("%s output has no paper comparison:\n%s", name, out)
		}
	}
}

func TestThroughputNearPaper(t *testing.T) {
	out := runQuick(t, "throughput")
	if !strings.Contains(out, "1694") || !strings.Contains(out, "1466") {
		t.Fatalf("throughput output missing paper values:\n%s", out)
	}
}

// The real-fabric experiments are exercised end to end (they take a
// few seconds each in quick mode).

func TestTable1Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("real-fabric experiment")
	}
	out := runQuick(t, "table1")
	for _, want := range []string{"Azure", "Google", "Amazon", "funcX", "warm", "cold"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table1 output missing %q:\n%s", want, out)
		}
	}
}

func TestFigure4Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("real-fabric experiment")
	}
	out := runQuick(t, "fig4")
	for _, want := range []string{"ts (web service)", "tf (forwarder)", "te (endpoint)", "tw (execution)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig4 output missing %q:\n%s", want, out)
		}
	}
}

func TestFigure6Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("real-fabric experiment")
	}
	out := runQuick(t, "fig6")
	if !strings.Contains(out, "peak pods") {
		t.Fatalf("fig6 output missing pod peaks:\n%s", out)
	}
}

func TestFigure7Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("real-fabric experiment")
	}
	out := runQuick(t, "fig7")
	if !strings.Contains(out, "FAILED") || !strings.Contains(out, "recover") {
		t.Fatalf("fig7 output missing failure phases:\n%s", out)
	}
}

func TestFigure8Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("real-fabric experiment")
	}
	out := runQuick(t, "fig8")
	if !strings.Contains(out, "FAILED") {
		t.Fatalf("fig8 output missing failure phase:\n%s", out)
	}
}

func TestRouterPoliciesRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("real-fabric experiment")
	}
	out := runQuick(t, "router")
	for _, want := range []string{"round-robin", "least-outstanding", "weighted-queue-depth", "label-affinity", "rerouted", "p99"} {
		if !strings.Contains(out, want) {
			t.Fatalf("router output missing %q:\n%s", want, out)
		}
	}
}

func TestElasticFleetRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("real-fabric experiment")
	}
	out := runQuick(t, "elastic")
	for _, want := range []string{"controller on", "controller off", "p99", "zero task loss", "peak blocks"} {
		if !strings.Contains(out, want) {
			t.Fatalf("elastic output missing %q:\n%s", want, out)
		}
	}
}

func TestStreamingRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("real-fabric experiment")
	}
	out := runQuick(t, "streaming")
	for _, want := range []string{"poll", "wait", "stream", "p99", "zero task loss", "retrieval requests"} {
		if !strings.Contains(out, want) {
			t.Fatalf("streaming output missing %q:\n%s", want, out)
		}
	}
}

func TestDurabilityRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("real-fabric experiment")
	}
	out := runQuick(t, "durability")
	for _, want := range []string{"kill+restart", "drain+handoff", "WAL", "zero task loss", "in-memory"} {
		if !strings.Contains(out, want) {
			t.Fatalf("durability output missing %q:\n%s", want, out)
		}
	}
}

func TestFigure9Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("real-fabric experiment")
	}
	out := runQuick(t, "fig9")
	if !strings.Contains(out, "peak throughput") {
		t.Fatalf("fig9 output missing peak:\n%s", out)
	}
}
