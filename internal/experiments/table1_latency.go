package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"funcx/internal/container"
	"funcx/internal/core"
	"funcx/internal/faas"
	"funcx/internal/fx"
	"funcx/internal/metrics"
	"funcx/internal/netlat"
	"funcx/internal/sdk"
	"funcx/internal/serial"
	"funcx/internal/service"
	"funcx/internal/types"
)

func init() {
	register("table1", Table1)
	register("fig4", Figure4)
}

// table1Setup boots the Table 1 fabric: service and endpoint "in
// us-east", the client on ANL Cooley 18.2 ms away, and Globus Auth
// introspection on the TS path. Returns the fabric, endpoint, client,
// and registered echo function.
func table1Setup(opts Options) (*core.Fabric, *core.Endpoint, *coreClient, error) {
	fab, err := core.NewFabric(core.FabricConfig{
		Service: service.Config{
			HeartbeatPeriod: 100 * time.Millisecond,
			ForwarderLat:    netlat.IntraAWS(opts.Seed + 11),
			AuthLat:         netlat.NewLink(8*time.Millisecond, time.Millisecond, opts.Seed+12),
		},
		ClientLat: netlat.CooleyToUSEast(opts.Seed + 13),
	})
	if err != nil {
		return nil, nil, nil, err
	}
	ep, err := fab.AddEndpoint(core.EndpointOptions{
		Name: "us-east-ec2", Owner: "experimenter",
		Managers: 1, WorkersPerManager: 2,
		PrewarmWorkers:  2, // warm path: containers already up
		HeartbeatPeriod: 100 * time.Millisecond,
		Seed:            opts.Seed,
	})
	if err != nil {
		fab.Close()
		return nil, nil, nil, err
	}
	client := fab.Client("experimenter")
	fnID, err := client.RegisterFunction(context.Background(), "echo", fx.BodyEcho, types.ContainerSpec{}, nil)
	if err != nil {
		fab.Close()
		return nil, nil, nil, err
	}
	return fab, ep, &coreClient{Client: client, fnID: fnID, epID: ep.ID}, nil
}

// coreClient bundles the SDK client with the experiment's function and
// endpoint ids.
type coreClient struct {
	*sdk.Client
	fnID types.FunctionID
	epID types.EndpointID
}

// roundTrip submits one echo and waits for the result, returning the
// client-observed round-trip time and the server-side timing.
func (c *coreClient) roundTrip(ctx context.Context, payload []byte) (time.Duration, types.Timing, error) {
	start := time.Now()
	id, err := c.Run(ctx, c.fnID, c.epID, payload)
	if err != nil {
		return 0, types.Timing{}, err
	}
	res, err := c.GetResult(ctx, id)
	if err != nil {
		return 0, types.Timing{}, err
	}
	if res.Err != nil {
		return 0, types.Timing{}, res.Err
	}
	return time.Since(start), res.Timing, nil
}

// funcxColdModel is the Table 1 cold-start distribution for the funcX
// row: the paper attributes the 1497 ms cold total almost entirely to
// container startup (total minus warm path ≈ 1386 ms; between the EC2
// Singularity and Docker rows of Table 2).
var funcxColdModel = container.Model{
	System: "ec2", Tech: types.ContainerDocker,
	Min: 1200 * time.Millisecond, Max: 1600 * time.Millisecond,
	Mean: 1386 * time.Millisecond, Sigma: 0.05,
}

// Table1 reproduces Table 1: warm and cold round-trip latency of the
// same "hello-world" echo function on Azure Functions, Google Cloud
// Functions, Amazon Lambda (published-behaviour models), and funcX
// (measured end-to-end on the real fabric with WAN and auth latency
// injected). Cold funcX invocations add a sampled container cold
// start, per the paper's attribution.
func Table1(opts Options) error {
	// Full scale: 500 warm (the paper used 10 000; the mean converges
	// well before 500 given each round trip really sleeps its WAN and
	// auth latency) and the paper's 50 cold.
	warmN, coldN := 500, 50
	if opts.Quick {
		warmN, coldN = 100, 20
	}

	tbl := metrics.NewTable("platform", "", "overhead (ms)", "function (ms)", "total (ms)", "std dev (ms)", "paper total (ms)")
	paper := map[string][2]string{
		"Azure":  {"130.0", "1359.7"},
		"Google": {"85.6", "222.8"},
		"Amazon": {"100.3", "468.8"},
		"funcX":  {"111.3", "1497.2"},
	}

	// Commercial baselines.
	now := time.Now()
	for _, p := range faas.All() {
		p.Seed(opts.Seed + int64(len(p.Name)))
		warm := metrics.NewSummary()
		warmFn := metrics.NewSummary()
		p.Invoke(now, false) // prime: the first invocation is cold
		for i := 0; i < warmN; i++ {
			inv := p.Invoke(now, false)
			now = now.Add(time.Second)
			warm.Add(inv.Total())
			warmFn.Add(inv.FuncTime)
		}
		cold := metrics.NewSummary()
		coldFn := metrics.NewSummary()
		for i := 0; i < coldN; i++ {
			inv := p.Invoke(now, true)
			now = now.Add(15 * time.Minute)
			cold.Add(inv.Total())
			coldFn.Add(inv.FuncTime)
		}
		tbl.AddRow(p.Name, "warm",
			metrics.FormatMS(warm.Mean()-warmFn.Mean()), metrics.FormatMS(warmFn.Mean()),
			metrics.FormatMS(warm.Mean()), metrics.FormatMS(warm.Std()), paper[p.Name][0])
		tbl.AddRow(p.Name, "cold",
			metrics.FormatMS(cold.Mean()-coldFn.Mean()), metrics.FormatMS(coldFn.Mean()),
			metrics.FormatMS(cold.Mean()), metrics.FormatMS(cold.Std()), paper[p.Name][1])
	}

	// funcX: measured on the real fabric.
	fab, _, client, err := table1Setup(opts)
	if err != nil {
		return err
	}
	defer fab.Close()
	ctx := context.Background()
	payload, err := serial.Serialize("hello-world")
	if err != nil {
		return err
	}
	// Warm the path (containers deploy, HTTP connections establish).
	for i := 0; i < 5; i++ {
		if _, _, err := client.roundTrip(ctx, payload); err != nil {
			return err
		}
	}
	warm := metrics.NewSummary()
	warmFn := metrics.NewSummary()
	for i := 0; i < warmN; i++ {
		total, timing, err := client.roundTrip(ctx, payload)
		if err != nil {
			return err
		}
		warm.Add(total)
		warmFn.Add(timing.TW)
	}
	// Cold: warm-path measurement plus a sampled container cold start
	// (the endpoint restart of the paper's methodology).
	rng := rand.New(rand.NewSource(opts.Seed + 14))
	cold := metrics.NewSummary()
	coldFn := metrics.NewSummary()
	for i := 0; i < coldN; i++ {
		total, timing, err := client.roundTrip(ctx, payload)
		if err != nil {
			return err
		}
		cold.Add(total + funcxColdModel.Sample(rng))
		coldFn.Add(timing.TW)
	}
	tbl.AddRow("funcX", "warm",
		metrics.FormatMS(warm.Mean()-warmFn.Mean()), metrics.FormatMS(warmFn.Mean()),
		metrics.FormatMS(warm.Mean()), metrics.FormatMS(warm.Std()), paper["funcX"][0])
	tbl.AddRow("funcX", "cold",
		metrics.FormatMS(cold.Mean()-coldFn.Mean()), metrics.FormatMS(coldFn.Mean()),
		metrics.FormatMS(cold.Mean()), metrics.FormatMS(cold.Std()), paper["funcX"][1])

	fmt.Fprint(opts.out(), tbl.Render())
	return nil
}

// Figure4 reproduces Figure 4: the per-hop latency breakdown of a warm
// funcX invocation — TS (web service: auth + store + enqueue), TF
// (forwarder), TE (endpoint internal queuing/dispatch), TW (execution).
func Figure4(opts Options) error {
	n := 300
	if opts.Quick {
		n = 100
	}
	fab, _, client, err := table1Setup(opts)
	if err != nil {
		return err
	}
	defer fab.Close()
	ctx := context.Background()
	payload, err := serial.Serialize("hello-world")
	if err != nil {
		return err
	}
	for i := 0; i < 5; i++ {
		if _, _, err := client.roundTrip(ctx, payload); err != nil {
			return err
		}
	}
	var sum types.Timing
	total := metrics.NewSummary()
	for i := 0; i < n; i++ {
		rt, timing, err := client.roundTrip(ctx, payload)
		if err != nil {
			return err
		}
		sum = sum.Add(timing)
		total.Add(rt)
	}
	avg := sum.Scale(n)
	tbl := metrics.NewTable("component", "mean (ms)", "paper observation")
	tbl.AddRow("ts (web service)", metrics.FormatMS(avg.TS), "largest share: authentication dominates")
	tbl.AddRow("tf (forwarder)", metrics.FormatMS(avg.TF), "small: intra-AWS hops <1ms + queue ops")
	tbl.AddRow("te (endpoint)", metrics.FormatMS(avg.TE), "second largest: internal queuing/dispatch")
	tbl.AddRow("tw (execution)", metrics.FormatMS(avg.TW), "fast relative to system latency")
	tbl.AddRow("client round trip", metrics.FormatMS(total.Mean()), "111 ms warm total (Table 1)")
	fmt.Fprint(opts.out(), tbl.Render())
	return nil
}
