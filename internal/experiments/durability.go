package experiments

import (
	"context"
	"fmt"
	"os"
	"sync"
	"time"

	"funcx/internal/core"
	"funcx/internal/fx"
	"funcx/internal/metrics"
	"funcx/internal/sdk"
	"funcx/internal/service"
	"funcx/internal/shard"
	"funcx/internal/types"
)

func init() { register("durability", Durability) }

// Durability measures the durable control plane: per-shard WAL +
// snapshot persistence (internal/wal under internal/store) with crash
// recovery and planned shard departure.
//
// Part 1 (crash recovery): a 3-shard fabric journals every shard to
// disk. A backlog of sleep tasks builds on one shard's group; the
// shard is killed cold mid-execution — queued tasks, in-flight
// leases, and stored results all on disk — and restarted on the same
// address. The restart must recover the shard's registry, queues,
// results, and leases from WAL + snapshot (no re-registration of
// anything), agents re-attach with reissued credentials, and every
// task submitted before the kill must resolve: zero loss. A function
// registered on the survivors while the shard was down must also be
// callable on the recovered shard (anti-entropy pull at boot).
//
// Part 2 (planned departure): a second shard, again holding a queued
// backlog, is drained: its endpoints, group, and queued tasks hand
// off to the ring's next owners, its agents re-home, and the drained
// shard degrades to a pure front door. Zero loss again, and
// submissions through any front door still reach the moved group.
//
// Part 3 (cost of durability): raw submit throughput of one service
// instance with the WAL on versus off — the price of fsync-backed
// acceptance on the hot path, kept low by group commit.
func Durability(opts Options) error {
	backlog, overheadTasks := 60, 576
	if opts.Quick {
		backlog, overheadTasks = 28, 192
	}

	dataDir, err := os.MkdirTemp("", "funcx-durability-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dataDir)

	rec, err := durabilityRecovery(opts, dataDir, backlog)
	if err != nil {
		return err
	}
	tbl := metrics.NewTable("phase", "tasks", "completed pre-kill", "recovered", "lost", "recovery (ms)")
	tbl.AddRow("kill+restart", fmt.Sprint(rec.tasks), fmt.Sprint(rec.preKill),
		fmt.Sprint(rec.tasks-rec.preKill), fmt.Sprint(rec.lost),
		fmt.Sprintf("%.0f", rec.recovery.Seconds()*1000))
	tbl.AddRow("drain+handoff", fmt.Sprint(rec.drainTasks), "-", fmt.Sprint(rec.drainMoved),
		fmt.Sprint(rec.drainLost), "-")
	fmt.Fprint(opts.out(), tbl.Render())
	fmt.Fprintf(opts.out(), "cold restart replayed %d WAL records (snapshot %d bytes, %d torn) and recovered registry, queues, results, and leases; zero task loss\n",
		rec.walRecords, rec.walSnapshot, rec.walTorn)
	fmt.Fprintf(opts.out(), "drain handed %d endpoints / %d groups / %d queued tasks to %d destination shard(s); zero task loss\n",
		rec.drainEndpoints, rec.drainGroups, rec.drainMovedTasks, rec.drainDests)

	walOff, err := durabilityThroughput(opts, "", overheadTasks)
	if err != nil {
		return fmt.Errorf("throughput wal-off: %w", err)
	}
	walOn, err := durabilityThroughput(opts, dataDir+"/tput", overheadTasks)
	if err != nil {
		return fmt.Errorf("throughput wal-on: %w", err)
	}
	ratio := walOn.rate / walOff.rate
	over := metrics.NewTable("config", "tasks", "wall (s)", "submits/s", "relative")
	over.AddRow("in-memory", fmt.Sprint(overheadTasks), fmt.Sprintf("%.2f", walOff.wall.Seconds()),
		fmt.Sprintf("%.0f", walOff.rate), "1.00x")
	over.AddRow("WAL + snapshots", fmt.Sprint(overheadTasks), fmt.Sprintf("%.2f", walOn.wall.Seconds()),
		fmt.Sprintf("%.0f", walOn.rate), fmt.Sprintf("%.2fx", ratio))
	fmt.Fprint(opts.out(), over.Render())
	fmt.Fprintln(opts.out(), "group-commit fsync (one sync per interval, not per append) keeps durable submit throughput near in-memory")

	if !opts.Quick && ratio < 0.5 {
		return fmt.Errorf("durability: WAL-on submit throughput only %.2fx in-memory", ratio)
	}
	return nil
}

// --- part 1+2: crash recovery and drain ---

type durabilityRun struct {
	tasks, preKill, lost int
	recovery             time.Duration
	walRecords, walTorn  uint64
	walSnapshot          uint64

	drainTasks, drainMoved, drainLost       int
	drainEndpoints, drainGroups, drainDests int
	drainMovedTasks                         int
}

// durabilityProvision boots two endpoints and a group on shard i,
// returning the group plus the endpoint ids and options needed to
// re-attach agents after a recovery.
func durabilityProvision(sf *core.ShardedFabric, i int, seed int64) (*types.EndpointGroup, []types.EndpointID, []core.EndpointOptions, error) {
	fab := sf.Shard(i)
	ids := make([]types.EndpointID, 2)
	allOpts := make([]core.EndpointOptions, 2)
	eps := make([]*core.Endpoint, 2)
	for j := range eps {
		o := core.EndpointOptions{
			Name: fmt.Sprintf("dur%d-ep%d", i, j), Owner: "experimenter",
			Managers: 1, WorkersPerManager: 2, PrewarmWorkers: 2,
			BatchDispatch:   true,
			HeartbeatPeriod: 50 * time.Millisecond,
			Seed:            seed + int64(i*10+j),
		}
		ep, err := fab.AddEndpoint(o)
		if err != nil {
			return nil, nil, nil, err
		}
		if err := ep.WaitForWorkers(1, 5*time.Second); err != nil {
			return nil, nil, nil, err
		}
		eps[j] = ep
		ids[j] = ep.ID
		allOpts[j] = o
	}
	g, err := fab.GroupOf("experimenter", fmt.Sprintf("dur%d-fleet", i), "least-outstanding", eps...)
	return g, ids, allOpts, err
}

func durabilityRecovery(opts Options, dataDir string, backlog int) (*durabilityRun, error) {
	sf, err := core.NewShardedFabric(core.ShardedFabricConfig{
		Shards:  3,
		Service: service.Config{HeartbeatPeriod: 50 * time.Millisecond},
		Ring:    shard.Config{Seed: opts.Seed},
		DataDir: dataDir,
	})
	if err != nil {
		return nil, err
	}
	defer sf.Close()

	type island struct {
		group *types.EndpointGroup
		ids   []types.EndpointID
		opts  []core.EndpointOptions
	}
	islands := make([]island, 3)
	for i := range islands {
		g, ids, epOpts, err := durabilityProvision(sf, i, opts.Seed)
		if err != nil {
			return nil, fmt.Errorf("provision shard %d: %w", i, err)
		}
		islands[i] = island{group: g, ids: ids, opts: epOpts}
	}
	ctx := context.Background()
	reg := sf.ClientVia(0, "experimenter")
	defer reg.Close()
	sleepFn, err := reg.RegisterFunction(ctx, "sleep", fx.BodySleep, types.ContainerSpec{}, nil)
	if err != nil {
		return nil, err
	}

	// Build a backlog of 80 ms sleeps on the victim shard's group,
	// submitted through a non-owner front door (the proxied path is the
	// one the journal must make durable).
	victim := sf.OwnerIndex(shard.GroupKey(islands[0].group.ID))
	front := (victim + 1) % sf.N()
	client := sf.ClientVia(front, "experimenter")
	defer client.Close()
	run := &durabilityRun{tasks: backlog}
	ids := make([]types.TaskID, 0, backlog)
	for t := 0; t < backlog; t++ {
		id, _, err := client.Submit(ctx, sdk.SubmitSpec{
			Function: sleepFn, Group: islands[0].group.ID, Payload: fx.SleepArgs(0.08),
		})
		if err != nil {
			return nil, fmt.Errorf("backlog submit %d: %w", t, err)
		}
		ids = append(ids, id)
	}

	// Let part of the backlog complete — the journal then holds stored
	// results AND queued tasks AND in-flight leases at the kill.
	completedOnVictim := func() int {
		fab := sf.Shard(victim)
		if fab == nil {
			return 0
		}
		total := 0
		for _, ep := range fab.Service.StatsSnapshot().Endpoints {
			total += int(ep.Completed)
		}
		return total
	}
	deadline := time.Now().Add(10 * time.Second)
	for completedOnVictim() < backlog/6 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	run.preKill = completedOnVictim()
	if run.preKill == 0 {
		return nil, fmt.Errorf("no tasks completed before the kill; backlog never started")
	}
	if run.preKill >= backlog {
		return nil, fmt.Errorf("entire backlog completed before the kill; nothing to recover")
	}

	// Cold kill mid-execution.
	if err := sf.KillShard(victim); err != nil {
		return nil, err
	}
	// While the shard is down, register a second function via a
	// survivor: the write-time broadcast cannot reach the dead shard,
	// so only the anti-entropy pull at recovered boot can deliver it.
	echoFn, err := sf.ClientVia(front, "experimenter").RegisterFunction(ctx, "echo", fx.BodyEcho, types.ContainerSpec{}, nil)
	if err != nil {
		return nil, err
	}

	// Timed cold restart: WAL + snapshot replay, registry/queue/lease
	// recovery, and the peer function pull all happen inside.
	start := time.Now()
	fab, err := sf.RestartShard(victim)
	if err != nil {
		return nil, fmt.Errorf("restart shard %d: %w", victim, err)
	}
	run.recovery = time.Since(start)
	st := fab.Service.StatsSnapshot()
	if st.WAL == nil || !st.WAL.Recovered {
		return nil, fmt.Errorf("restarted shard did not recover from its journal")
	}
	run.walRecords = st.WAL.RecoveredRecords
	run.walSnapshot = st.WAL.RecoveredSnapshot
	run.walTorn = st.WAL.TornRecords

	// The registry must have survived: re-attach agents to the
	// recovered endpoint records — no re-registration of endpoints,
	// groups, or functions.
	for j, epID := range islands[0].ids {
		if _, err := fab.AttachEndpoint(epID, islands[0].opts[j]); err != nil {
			return nil, fmt.Errorf("re-attach agent %s: %w", epID, err)
		}
	}

	// Every pre-kill task must resolve: results stored before the kill
	// were journaled; queued and in-flight tasks re-deliver to the
	// re-attached agents.
	gctx, cancel := context.WithTimeout(ctx, 2*time.Minute)
	defer cancel()
	results, err := client.GetResults(gctx, ids)
	if err != nil {
		return nil, fmt.Errorf("gathering across the restart: %w", err)
	}
	for _, res := range results {
		if res == nil || res.Err != nil {
			run.lost++
		}
	}
	if run.lost != 0 {
		return run, fmt.Errorf("durability: %d/%d tasks lost across kill+restart", run.lost, backlog)
	}

	// Post-recovery futures: the pre-kill function AND the function
	// registered while the shard was down (anti-entropy) must both be
	// callable through the recovered shard with no re-registration.
	recClient := sf.ClientVia(victim, "experimenter")
	defer recClient.Close()
	for _, fn := range []types.FunctionID{sleepFn, echoFn} {
		fut, err := recClient.SubmitFuture(ctx, sdk.SubmitSpec{
			Function: fn, Group: islands[0].group.ID, Payload: fx.SleepArgs(0.01),
		})
		if err != nil {
			return run, fmt.Errorf("post-recovery submit of %s: %w", fn, err)
		}
		if res, err := fut.Get(gctx); err != nil || res.Err != nil {
			return run, fmt.Errorf("post-recovery future for %s did not resolve: %v / %v", fn, err, res)
		}
	}

	// --- part 2: planned departure of a second shard ---
	leaver := sf.OwnerIndex(shard.GroupKey(islands[1].group.ID))
	drainIDs := make([]types.TaskID, 0, backlog)
	for t := 0; t < backlog; t++ {
		id, _, err := client.Submit(ctx, sdk.SubmitSpec{
			Function: sleepFn, Group: islands[1].group.ID, Payload: fx.SleepArgs(0.08),
		})
		if err != nil {
			return run, fmt.Errorf("drain backlog submit %d: %w", t, err)
		}
		drainIDs = append(drainIDs, id)
	}
	run.drainTasks = len(drainIDs)
	report, err := sf.DrainShard(leaver)
	if err != nil {
		return run, fmt.Errorf("drain shard %d: %w", leaver, err)
	}
	run.drainEndpoints = report.Endpoints
	run.drainGroups = report.Groups
	run.drainMovedTasks = report.Tasks
	run.drainDests = len(report.Destinations)
	if report.Endpoints == 0 || report.Groups == 0 {
		return run, fmt.Errorf("drain moved no records (report %+v)", report)
	}

	// Gather through a third shard: its ring still names the drained
	// shard as owner, so the wait hops drained shard -> importer —
	// the bounded extra hop the handoff overrides allow.
	results, err = client.GetResults(gctx, drainIDs)
	if err != nil {
		return run, fmt.Errorf("gathering across the drain: %w", err)
	}
	for _, res := range results {
		if res == nil || res.Err != nil {
			run.drainLost++
		}
	}
	run.drainMoved = run.drainTasks - run.drainLost
	if run.drainLost != 0 {
		return run, fmt.Errorf("durability: %d/%d tasks lost across drain", run.drainLost, run.drainTasks)
	}

	// The moved group must remain reachable through any front door.
	fut, err := client.SubmitFuture(ctx, sdk.SubmitSpec{
		Function: echoFn, Group: islands[1].group.ID, Payload: fx.SleepArgs(0),
	})
	if err != nil {
		return run, fmt.Errorf("post-drain submit: %w", err)
	}
	if res, err := fut.Get(gctx); err != nil || res.Err != nil {
		return run, fmt.Errorf("post-drain future did not resolve: %v / %v", err, res)
	}
	return run, nil
}

// --- part 3: WAL-on vs WAL-off submit throughput ---

type durabilityTput struct {
	wall time.Duration
	rate float64
}

// durabilityThroughput times a burst of concurrent direct-to-endpoint
// submissions against one instance; dataDir == "" runs in-memory.
func durabilityThroughput(opts Options, dataDir string, tasks int) (*durabilityTput, error) {
	const submitters = 16
	cfg := service.Config{HeartbeatPeriod: 50 * time.Millisecond, DataDir: dataDir}
	fab, err := core.NewFabric(core.FabricConfig{Service: cfg})
	if err != nil {
		return nil, err
	}
	defer fab.Close()
	ep, err := fab.AddEndpoint(core.EndpointOptions{
		Name: "tput", Owner: "experimenter",
		Managers: 1, WorkersPerManager: 8, PrewarmWorkers: 8,
		BatchDispatch:   true,
		HeartbeatPeriod: 50 * time.Millisecond,
		Seed:            opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	if err := ep.WaitForWorkers(1, 5*time.Second); err != nil {
		return nil, err
	}
	ctx := context.Background()
	reg := fab.Client("experimenter")
	defer reg.Close()
	fnID, err := reg.RegisterFunction(ctx, "noop", fx.BodyNoop, types.ContainerSpec{}, nil)
	if err != nil {
		return nil, err
	}

	perSubmitter := tasks / submitters
	type lane struct {
		client *sdk.Client
		ids    []types.TaskID
	}
	lanes := make([]*lane, submitters)
	for i := range lanes {
		lanes[i] = &lane{client: fab.Client("experimenter")}
	}
	defer func() {
		for _, l := range lanes {
			l.client.Close()
		}
	}()
	var wg sync.WaitGroup
	errs := make(chan error, submitters)
	start := time.Now()
	for _, l := range lanes {
		wg.Add(1)
		go func(l *lane) {
			defer wg.Done()
			for t := 0; t < perSubmitter; t++ {
				id, _, err := l.client.Submit(ctx, sdk.SubmitSpec{Function: fnID, Endpoint: ep.ID})
				if err != nil {
					errs <- err
					return
				}
				l.ids = append(l.ids, id)
			}
		}(l)
	}
	wg.Wait()
	wall := time.Since(start)
	close(errs)
	if err := <-errs; err != nil {
		return nil, err
	}
	gctx, cancel := context.WithTimeout(ctx, 2*time.Minute)
	defer cancel()
	for _, l := range lanes {
		results, err := l.client.GetResults(gctx, l.ids)
		if err != nil {
			return nil, fmt.Errorf("gather: %w", err)
		}
		for _, res := range results {
			if res == nil || res.Err != nil {
				return nil, fmt.Errorf("throughput task failed: %+v", res)
			}
		}
	}
	submitted := perSubmitter * submitters
	return &durabilityTput{wall: wall, rate: float64(submitted) / wall.Seconds()}, nil
}
