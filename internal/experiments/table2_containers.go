package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"funcx/internal/container"
	"funcx/internal/metrics"
)

func init() { register("table2", Table2) }

// Table2 reproduces Table 2: cold container instantiation time (min /
// max / mean) per (system, container technology). The measured rows
// draw from the calibrated cold-start models — the same models the
// fabric's container runtime pays on every cold deployment.
func Table2(opts Options) error {
	samples := 200
	if opts.Quick {
		samples = 50
	}
	type row struct {
		system, tech string
		profile      string
		paperMin     float64
		paperMax     float64
		paperMean    float64
	}
	rows := []row{
		{"Theta", "Singularity", "theta/singularity", 9.83, 14.06, 10.40},
		{"Cori", "Shifter", "cori/shifter", 7.25, 31.26, 8.49},
		{"EC2", "Docker", "ec2/docker", 1.74, 1.88, 1.79},
		{"EC2", "Singularity", "ec2/singularity", 1.19, 1.26, 1.22},
	}
	tbl := metrics.NewTable("system", "container", "min (s)", "max (s)", "mean (s)",
		"paper min", "paper max", "paper mean")
	rng := rand.New(rand.NewSource(opts.Seed + 2))
	for _, r := range rows {
		model := container.Profiles[r.profile]
		s := metrics.NewSummary()
		for i := 0; i < samples; i++ {
			s.Add(model.Sample(rng))
		}
		tbl.AddRow(r.system, r.tech,
			secs(s.Min()), secs(s.Max()), secs(s.Mean()),
			fmt.Sprintf("%.2f", r.paperMin), fmt.Sprintf("%.2f", r.paperMax), fmt.Sprintf("%.2f", r.paperMean))
	}
	fmt.Fprint(opts.out(), tbl.Render())
	return nil
}

func secs(d time.Duration) string { return fmt.Sprintf("%.2f", d.Seconds()) }
