package experiments

import (
	"context"
	"fmt"
	"math"
	"os"
	"time"

	"funcx/internal/api"
	"funcx/internal/core"
	"funcx/internal/fx"
	"funcx/internal/metrics"
	"funcx/internal/sdk"
	"funcx/internal/service"
	"funcx/internal/shard"
	"funcx/internal/types"
)

func init() { register("dag", DAG) }

// DAG demonstrates server-side task composition: a three-stage
// map→reduce workflow (N doubles → N per-item reductions → one fan-in
// sum) submitted as ONE request over a fleet of 3 endpoints. Every
// internal edge — parent output to child input — is released, bound,
// and routed inside the fabric: the shard's dag_releases counter must
// equal the dependent-node count while the client issues exactly one
// submit and one collect request.
//
// Two failure drills ride along. First, the submitting client
// disconnects mid-flight and a fresh client collects only the root
// future — the graph needs no client to make progress. Second, a new
// graph's owner shard is cold-killed mid-workflow and restarted: the
// journaled graph recovers (held edges, landed outputs, released
// nodes) and the workflow completes with zero lost nodes.
func DAG(opts Options) error {
	mapN := 12
	if opts.Quick {
		mapN = 6
	}

	dataDir, err := os.MkdirTemp("", "funcx-dag-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dataDir)

	sf, err := core.NewShardedFabric(core.ShardedFabricConfig{
		Shards:  3,
		Service: service.Config{HeartbeatPeriod: 50 * time.Millisecond},
		Ring:    shard.Config{Seed: opts.Seed},
		DataDir: dataDir,
	})
	if err != nil {
		return err
	}
	defer sf.Close()

	// Fleet: 3 endpoints and a group, provisioned on one shard (ids
	// mint ring-aligned, so that shard owns the group, the endpoints,
	// and — via the first node's group key — every graph below).
	fab := sf.Shard(0)
	epIDs := make([]types.EndpointID, 3)
	epOpts := make([]core.EndpointOptions, 3)
	eps := make([]*core.Endpoint, 3)
	for j := range eps {
		o := core.EndpointOptions{
			Name: fmt.Sprintf("dag-ep%d", j), Owner: "experimenter",
			Managers: 1, WorkersPerManager: 2, PrewarmWorkers: 2,
			HeartbeatPeriod: 50 * time.Millisecond,
			Seed:            opts.Seed + int64(j),
		}
		ep, err := fab.AddEndpoint(o)
		if err != nil {
			return err
		}
		if err := ep.WaitForWorkers(1, 5*time.Second); err != nil {
			return err
		}
		eps[j], epIDs[j], epOpts[j] = ep, ep.ID, o
	}
	group, err := fab.GroupOf("experimenter", "dag-fleet", "least-outstanding", eps...)
	if err != nil {
		return err
	}
	owner := sf.OwnerIndex(shard.GroupKey(group.ID))
	front := (owner + 1) % sf.N()

	ctx := context.Background()
	reg := sf.ClientVia(front, "experimenter")
	sleepFn, err := reg.RegisterFunction(ctx, "sleep", fx.BodySleep, types.ContainerSpec{}, nil)
	if err != nil {
		reg.Close()
		return err
	}
	sumFn, err := reg.RegisterFunction(ctx, "dagsum", fx.BodyDAGSum, types.ContainerSpec{}, nil)
	if err != nil {
		reg.Close()
		return err
	}
	reg.Close()

	// Staggered map durations (80 ms .. mapN*80 ms) keep part 2's
	// kill window wide: fast maps land while slow ones still run.
	mapArg := func(i int) float64 { return 0.08 * float64(i+1) }
	buildGraph := func(c *sdk.Client) *sdk.DAGBuilder {
		b := c.NewDAG()
		stage2 := make([]string, 0, mapN)
		for i := 0; i < mapN; i++ {
			mk, sk := fmt.Sprintf("map%d", i), fmt.Sprintf("id%d", i)
			b.Node(mk, sdk.SubmitSpec{Function: sleepFn, Group: group.ID, Payload: fx.SleepArgs(mapArg(i))})
			b.Node(sk, sdk.SubmitSpec{Function: sumFn, Group: group.ID}, mk)
			stage2 = append(stage2, sk)
		}
		b.Node("reduce", sdk.SubmitSpec{Function: sumFn, Group: group.ID}, stage2...)
		return b
	}
	// sleep(x) returns x, identity stage-2, fan-in sum.
	want := 0.0
	for i := 0; i < mapN; i++ {
		want += mapArg(i)
	}
	checkSum := func(res *sdk.Result) error {
		v, err := fx.DecodeFloat(res.Output)
		if err != nil {
			return fmt.Errorf("dag: decoding reduce output: %w", err)
		}
		if math.Abs(v-want) > 1e-9 {
			return fmt.Errorf("dag: reduce = %v, want %v", v, want)
		}
		return nil
	}
	ownerStats := func() api.StatsResponse { return sf.Shard(owner).Service.StatsSnapshot() }
	depNodes := mapN + 1 // every stage-2 node plus the fan-in reduce

	// --- part 1: one-shot workflow + client disconnect mid-flight ---
	before := ownerStats()
	submitter := sf.ClientVia(front, "experimenter")
	h, err := buildGraph(submitter).Submit(ctx)
	if err != nil {
		submitter.Close()
		return fmt.Errorf("submit dag: %w", err)
	}
	rootID := h.Tasks["reduce"]
	// Disconnect: the submitting client goes away with the whole
	// workflow in flight. The graph belongs to the service now.
	submitter.Close()

	collector := sf.ClientVia(front, "experimenter")
	defer collector.Close()
	gctx, cancel := context.WithTimeout(ctx, 2*time.Minute)
	defer cancel()
	res, err := collector.GetResult(gctx, rootID)
	if err != nil {
		return fmt.Errorf("collect root after reconnect: %w", err)
	}
	if res.Err != nil {
		return fmt.Errorf("root failed: %w", res.Err)
	}
	if err := checkSum(res); err != nil {
		return err
	}
	after := ownerStats()
	releases := after.DAGReleases - before.DAGReleases
	if releases != int64(depNodes) {
		return fmt.Errorf("dag: %d server-side releases, want %d (one per dependent node)", releases, depNodes)
	}
	if done := after.DAGsCompleted - before.DAGsCompleted; done != 1 {
		return fmt.Errorf("dag: %d graphs completed, want 1", done)
	}
	st, err := collector.DAGStatus(ctx, h.ID)
	if err != nil {
		return fmt.Errorf("dag status: %w", err)
	}
	if st.Status != types.TaskSuccess {
		return fmt.Errorf("dag: graph status %s, want %s", st.Status, types.TaskSuccess)
	}

	// --- part 2: cold-kill the owner shard mid-workflow ---
	before = ownerStats()
	h2, err := buildGraph(collector).Submit(ctx)
	if err != nil {
		return fmt.Errorf("submit dag 2: %w", err)
	}
	root2 := h2.Tasks["reduce"]
	// Wait for partial progress: some maps landed, graph still active.
	completed := func(st api.StatsResponse) int64 {
		var n int64
		for _, ep := range st.Endpoints {
			n += ep.Completed
		}
		return n
	}
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		cur := ownerStats()
		if completed(cur)-completed(before) >= 2 && cur.DAGsCompleted == before.DAGsCompleted {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	mid := ownerStats()
	if mid.DAGsCompleted != before.DAGsCompleted {
		return fmt.Errorf("dag: workflow finished before the kill; nothing to recover")
	}
	preKill := completed(mid) - completed(before)
	if err := sf.KillShard(owner); err != nil {
		return err
	}
	start := time.Now()
	rfab, err := sf.RestartShard(owner)
	if err != nil {
		return fmt.Errorf("restart shard %d: %w", owner, err)
	}
	recovery := time.Since(start)
	for j, id := range epIDs {
		if _, err := rfab.AttachEndpoint(id, epOpts[j]); err != nil {
			return fmt.Errorf("re-attach endpoint %s: %w", id, err)
		}
	}
	res2, err := collector.GetResult(gctx, root2)
	if err != nil {
		return fmt.Errorf("collect root across restart: %w", err)
	}
	if res2.Err != nil {
		return fmt.Errorf("root failed across restart: %w", res2.Err)
	}
	if err := checkSum(res2); err != nil {
		return fmt.Errorf("after restart: %w", err)
	}
	st2, err := collector.DAGStatus(ctx, h2.ID)
	if err != nil {
		return fmt.Errorf("dag status after restart: %w", err)
	}
	lost := 0
	for _, n := range st2.Nodes {
		if n.State != "success" {
			lost++
		}
	}
	if lost != 0 {
		return fmt.Errorf("dag: %d nodes not successful after kill+restart", lost)
	}

	tbl := metrics.NewTable("phase", "nodes", "internal edges", "server releases", "client edge reqs", "outcome")
	tbl.AddRow("map→reduce + disconnect", fmt.Sprint(2*mapN+1), fmt.Sprint(2*mapN),
		fmt.Sprint(releases), "0", fmt.Sprintf("reduce=%.2f", want))
	tbl.AddRow("kill+restart mid-graph", fmt.Sprint(2*mapN+1), fmt.Sprint(2*mapN),
		"-", "0", fmt.Sprintf("%d pre-kill, 0 lost, recovery %.0f ms", preKill, recovery.Seconds()*1000))
	fmt.Fprint(opts.out(), tbl.Render())
	fmt.Fprintf(opts.out(), "one submit + one collect request end to end; %d dependent nodes released, fed, and routed inside the fabric\n", depNodes)
	fmt.Fprintln(opts.out(), "the graph survives both its client and its shard: journaled edges recover held/released state across a cold restart")
	return nil
}
