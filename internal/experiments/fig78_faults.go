package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"funcx/internal/core"
	"funcx/internal/fx"
	"funcx/internal/metrics"
	"funcx/internal/service"
	"funcx/internal/types"
)

func init() {
	register("fig7", Figure7)
	register("fig8", Figure8)
}

// faultStream drives a uniform-rate stream of 100 ms sleep functions
// at a fabric, injecting a failure and recovery at the given offsets,
// and returns the task-latency timeline (latency measured client side
// per task, stamped at submission time).
func faultStream(opts Options, managers int, duration, failAt, recoverAt time.Duration,
	rate int, fail, recover func(*core.Endpoint)) (*metrics.Series, error) {

	fab, err := core.NewFabric(core.FabricConfig{
		Service: service.Config{
			HeartbeatPeriod: 50 * time.Millisecond,
			HeartbeatMisses: 3,
		},
	})
	if err != nil {
		return nil, err
	}
	defer fab.Close()

	ep, err := fab.AddEndpoint(core.EndpointOptions{
		Name: "fault-ep", Owner: "experimenter",
		Managers: managers, WorkersPerManager: 4,
		PrewarmWorkers:  4,
		BatchDispatch:   true,
		HeartbeatPeriod: 50 * time.Millisecond,
		HeartbeatMisses: 3,
		Seed:            opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	client := fab.Client("experimenter")
	ctx := context.Background()
	fnID, err := client.RegisterFunction(ctx, "sleep", fx.BodySleep, types.ContainerSpec{}, nil)
	if err != nil {
		return nil, err
	}

	series := metrics.NewSeries("task latency")
	origin := time.Now()
	var wg sync.WaitGroup
	interval := time.Second / time.Duration(rate)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()

	failTimer := time.NewTimer(failAt)
	recoverTimer := time.NewTimer(recoverAt)
	defer failTimer.Stop()
	defer recoverTimer.Stop()
	end := time.NewTimer(duration)
	defer end.Stop()

	args := fx.SleepArgs(0.1) // 100 ms functions, real time

loop:
	for {
		select {
		case <-ticker.C:
			submitted := time.Now()
			wg.Add(1)
			go func() {
				defer wg.Done()
				id, err := client.Run(ctx, fnID, ep.ID, args)
				if err != nil {
					return
				}
				res, err := client.GetResult(ctx, id)
				if err != nil || res.Err != nil {
					return
				}
				series.RecordAt(submitted, time.Since(submitted).Seconds())
			}()
		case <-failTimer.C:
			fail(ep)
		case <-recoverTimer.C:
			recover(ep)
		case <-end.C:
			break loop
		}
	}
	// Collect stragglers (tasks queued during the outage).
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(duration):
	}
	_ = origin
	return series, nil
}

// renderTimeline buckets a latency series and prints mean/max latency
// per bucket, annotating the failure window.
func renderTimeline(opts Options, s *metrics.Series, bucket, failAt, recoverAt time.Duration, paperNote string) {
	points := s.Points()
	var maxT time.Duration
	for _, p := range points {
		if p.T > maxT {
			maxT = p.T
		}
	}
	tbl := metrics.NewTable("t (s)", "tasks", "mean latency (s)", "max latency (s)", "phase")
	for t := time.Duration(0); t <= maxT; t += bucket {
		mean := s.MeanIn(t, t+bucket)
		max := s.MaxIn(t, t+bucket)
		n := 0
		for _, p := range points {
			if p.T >= t && p.T < t+bucket {
				n++
			}
		}
		phase := "healthy"
		switch {
		case t+bucket > failAt && t < recoverAt:
			phase = "FAILED"
		case t >= recoverAt && t < recoverAt+2*bucket:
			phase = "recovering"
		}
		tbl.AddRow(fmt.Sprintf("%.1f", t.Seconds()), fmt.Sprint(n),
			fmt.Sprintf("%.3f", mean), fmt.Sprintf("%.3f", max), phase)
	}
	fmt.Fprint(opts.out(), tbl.Render())
	fmt.Fprintf(opts.out(), "paper: %s\n", paperNote)
}

// Figure7 reproduces Figure 7: two managers process a uniform stream
// of 100 ms functions at capacity; one manager is killed 2 s in and a
// replacement starts 2 s later. Task latency spikes while the agent's
// watchdog detects the loss and re-executes the manager's outstanding
// tasks, then returns to baseline.
func Figure7(opts Options) error {
	duration := 8 * time.Second
	failAt, recoverAt := 2*time.Second, 4*time.Second
	rate := 60
	if opts.Quick {
		duration = 4 * time.Second
		failAt, recoverAt = time.Second, 2*time.Second
		rate = 40
	}
	series, err := faultStream(opts, 2, duration, failAt, recoverAt, rate,
		func(ep *core.Endpoint) { ep.KillManager(0) }, //nolint:errcheck
		func(ep *core.Endpoint) { ep.AddManager() },   //nolint:errcheck
	)
	if err != nil {
		return err
	}
	renderTimeline(opts, series, 500*time.Millisecond, failAt, recoverAt,
		"latency increases immediately after the failure as tasks queue, then quickly recovers (Fig 7)")
	return nil
}

// Figure8 reproduces Figure 8: the endpoint agent disconnects from
// the funcX service mid-stream and reconnects later. Tasks submitted
// during the outage wait in the service-side reliable queue, so their
// latency grows linearly with outage time remaining; after
// re-registration the backlog drains and latency returns to baseline.
// (The paper fails at 43 s and recovers at 85 s; we compress the
// timeline 10x, which preserves the shape.)
func Figure8(opts Options) error {
	duration := 12 * time.Second
	failAt, recoverAt := 4300*time.Millisecond, 8500*time.Millisecond
	rate := 30
	if opts.Quick {
		duration = 5 * time.Second
		failAt, recoverAt = 1500*time.Millisecond, 3*time.Second
		rate = 20
	}
	series, err := faultStream(opts, 2, duration, failAt, recoverAt, rate,
		func(ep *core.Endpoint) { ep.Disconnect() },
		func(ep *core.Endpoint) { ep.Reconnect() }, //nolint:errcheck
	)
	if err != nil {
		return err
	}
	renderTimeline(opts, series, time.Second, failAt, recoverAt,
		"latency increases immediately following the failure and returns to previous levels after recovery (Fig 8)")
	return nil
}
