package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"funcx/internal/metrics"
	"funcx/internal/workload"
)

func init() { register("fig1", Figure1) }

// Figure1 reproduces Figure 1: the distribution of latencies for 100
// function calls for each of the six scientific case studies. The
// paper presents box plots; we print the five-number summary per case
// study from the calibrated duration models.
func Figure1(opts Options) error {
	n := 100
	rng := rand.New(rand.NewSource(opts.Seed + 1))
	tbl := metrics.NewTable("case study", "n", "min", "p25", "median", "p75", "max", "paper range")
	paperRange := map[string]string{
		"metadata": "3 ms – 15 s",
		"mnist":    "sub-second inference",
		"ssx":      "1–2 s per still",
		"neuro":    "seconds per image",
		"xpcs":     "~50 s corr",
		"hep":      "seconds per query",
	}
	for _, cs := range workload.All() {
		s := metrics.NewSummary()
		for _, d := range cs.Durations(rng, n) {
			s.Add(d)
		}
		p := s.Percentiles(0, 25, 50, 75, 100)
		tbl.AddRow(cs.Name, fmt.Sprint(n),
			fmtDur(p[0]), fmtDur(p[1]), fmtDur(p[2]), fmtDur(p[3]), fmtDur(p[4]),
			paperRange[cs.Key])
	}
	fmt.Fprint(opts.out(), tbl.Render())
	return nil
}

// fmtDur renders a duration compactly for tables (ms below 10 s,
// seconds above).
func fmtDur(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	case d < 10*time.Second:
		return fmt.Sprintf("%.0fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.1fs", d.Seconds())
	}
}
