package experiments

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"funcx/internal/core"
	"funcx/internal/fx"
	"funcx/internal/metrics"
	"funcx/internal/netlat"
	"funcx/internal/sdk"
	"funcx/internal/serial"
	"funcx/internal/service"
	"funcx/internal/shard"
	"funcx/internal/types"
)

func init() { register("sharding", Sharding) }

// Sharding measures cross-service sharding (the journal paper's
// horizontally scaled web tier, 2209.11631): a consistent-hash ring
// assigns ownership of groups, users, and endpoints to N shared-nothing
// service shards, and a cross-shard gateway makes every shard a valid
// front door.
//
// Part 1 (correctness): a 3-shard fabric serves three disjoint groups
// with every client deliberately entering through a NON-owner shard, so
// every submission is proxied and every status read redirected. One
// shard is then killed and restarted (same ring identity, fresh state)
// and a second wave runs. Zero task loss is required across both waves.
//
// Part 2 (throughput): each service instance models a fixed web-worker
// pool (SubmitConcurrency) behind Globus-Auth introspection latency —
// the per-instance capacity that makes horizontal scaling pay off.
// Aggregate submit throughput is compared across one instance, three
// shards with shard-aware entry (clients hit the owner, as a
// ring-aware load balancer would), and three shards with blind
// non-owner entry (every submission pays a proxy hop).
func Sharding(opts Options) error {
	serveTasks, tputTasks := 60, 576
	if opts.Quick {
		serveTasks, tputTasks = 30, 192
	}

	serve, err := shardingServe(opts, serveTasks)
	if err != nil {
		return err
	}
	tbl := metrics.NewTable("phase", "tasks", "completed", "lost", "proxied", "redirected", "wall (s)")
	for _, w := range serve.waves {
		tbl.AddRow(w.name, fmt.Sprint(w.tasks), fmt.Sprint(w.completed), fmt.Sprint(w.lost),
			fmt.Sprint(w.proxied), fmt.Sprint(w.redirected), fmt.Sprintf("%.2f", w.wall.Seconds()))
	}
	fmt.Fprint(opts.out(), tbl.Render())
	fmt.Fprintln(opts.out(), "3 shards, disjoint groups, every request entering via a non-owner front door; shard 'wave-2' ran after killing and restarting one shard")

	const submitters = 24
	tput := metrics.NewTable("config", "entry", "tasks", "wall (s)", "submits/s", "speedup")
	single, err := shardingThroughput(opts, "single", tputTasks, submitters)
	if err != nil {
		return fmt.Errorf("throughput single: %w", err)
	}
	tput.AddRow("1 service", "direct", fmt.Sprint(tputTasks),
		fmt.Sprintf("%.2f", single.wall.Seconds()), fmt.Sprintf("%.0f", single.rate), "1.00x")
	owner, err := shardingThroughput(opts, "owner", tputTasks, submitters)
	if err != nil {
		return fmt.Errorf("throughput sharded/owner: %w", err)
	}
	ownerSpeedup := owner.rate / single.rate
	tput.AddRow("3 shards", "owner (ring-aware LB)", fmt.Sprint(tputTasks),
		fmt.Sprintf("%.2f", owner.wall.Seconds()), fmt.Sprintf("%.0f", owner.rate),
		fmt.Sprintf("%.2fx", ownerSpeedup))
	blind, err := shardingThroughput(opts, "nonowner", tputTasks, submitters)
	if err != nil {
		return fmt.Errorf("throughput sharded/non-owner: %w", err)
	}
	tput.AddRow("3 shards", "non-owner (proxied)", fmt.Sprint(tputTasks),
		fmt.Sprintf("%.2f", blind.wall.Seconds()), fmt.Sprintf("%.0f", blind.rate),
		fmt.Sprintf("%.2fx", blind.rate/single.rate))
	fmt.Fprint(opts.out(), tput.Render())
	fmt.Fprintf(opts.out(), "each instance models a %d-worker web pool behind introspection latency; %d concurrent submitters\n",
		shardingWebWorkers, submitters)

	if !opts.Quick && ownerSpeedup < 1.5 {
		return fmt.Errorf("sharding: 3-shard aggregate submit throughput only %.2fx a single shard", ownerSpeedup)
	}
	return nil
}

// --- part 1: cross-shard serving with a kill/restart ---

type shardingWave struct {
	name                string
	tasks               int
	completed, lost     int
	proxied, redirected int64
	wall                time.Duration
}

type shardingServeRun struct {
	waves []shardingWave
}

// provisionShard boots shard i's island: two endpoints and one group.
func provisionShard(sf *core.ShardedFabric, i int, seed int64) (*types.EndpointGroup, error) {
	fab := sf.Shard(i)
	eps := make([]*core.Endpoint, 2)
	for j := range eps {
		ep, err := fab.AddEndpoint(core.EndpointOptions{
			Name: fmt.Sprintf("sh%d-ep%d", i, j), Owner: "experimenter",
			Managers: 1, WorkersPerManager: 4, PrewarmWorkers: 4,
			BatchDispatch:   true,
			HeartbeatPeriod: 50 * time.Millisecond,
			Seed:            seed + int64(i*10+j),
		})
		if err != nil {
			return nil, err
		}
		if err := ep.WaitForWorkers(1, 5*time.Second); err != nil {
			return nil, err
		}
		eps[j] = ep
	}
	return fab.GroupOf("experimenter", fmt.Sprintf("sh%d-fleet", i), "least-outstanding", eps...)
}

func shardingServe(opts Options, tasksPerWave int) (*shardingServeRun, error) {
	sf, err := core.NewShardedFabric(core.ShardedFabricConfig{
		Shards:  3,
		Service: service.Config{HeartbeatPeriod: 50 * time.Millisecond},
		Ring:    shard.Config{Seed: opts.Seed},
	})
	if err != nil {
		return nil, err
	}
	defer sf.Close()

	groups := make([]*types.EndpointGroup, 3)
	for i := range groups {
		if groups[i], err = provisionShard(sf, i, opts.Seed); err != nil {
			return nil, fmt.Errorf("provision shard %d: %w", i, err)
		}
	}
	ctx := context.Background()
	regClient := sf.ClientVia(0, "experimenter")
	defer regClient.Close()
	fnID, err := regClient.RegisterFunction(ctx, "echo", fx.BodyEcho, types.ContainerSpec{}, nil)
	if err != nil {
		return nil, err
	}

	// gatewayTotals sums proxied/redirected counters across live shards.
	gatewayTotals := func() (proxied, redirected int64) {
		for i := 0; i < sf.N(); i++ {
			if fab := sf.Shard(i); fab != nil {
				st := fab.Service.StatsSnapshot()
				proxied += st.Proxied
				redirected += st.Redirected
			}
		}
		return
	}

	// runWave drives tasksPerWave submissions split across the groups,
	// every client entering through a non-owner front door, and gathers
	// every future.
	runWave := func(name string, fn types.FunctionID) (*shardingWave, error) {
		w := &shardingWave{name: name, tasks: tasksPerWave}
		p0, r0 := gatewayTotals()
		start := time.Now()
		var wg sync.WaitGroup
		errs := make(chan error, len(groups))
		var mu sync.Mutex
		for gi, g := range groups {
			wg.Add(1)
			go func(gi int, g *types.EndpointGroup) {
				defer wg.Done()
				owner := sf.OwnerIndex(shard.GroupKey(g.ID))
				front := (owner + 1) % sf.N() // never the owner
				client := sf.ClientVia(front, "experimenter")
				defer client.Close()
				share := tasksPerWave / len(groups)
				futures := make([]*sdk.Future, 0, share)
				for t := 0; t < share; t++ {
					payload, err := serial.Serialize(fmt.Sprintf("%s-%d-%d", name, gi, t))
					if err != nil {
						errs <- err
						return
					}
					fut, err := client.SubmitFuture(ctx, sdk.SubmitSpec{Function: fn, Group: g.ID, Payload: payload})
					if err != nil {
						errs <- fmt.Errorf("%s: submit via non-owner shard %d: %w", name, front, err)
						return
					}
					futures = append(futures, fut)
				}
				gctx, cancel := context.WithTimeout(ctx, time.Minute)
				defer cancel()
				for _, fut := range futures {
					res, err := fut.Get(gctx)
					if err != nil {
						errs <- fmt.Errorf("future did not resolve: %w", err)
						return
					}
					mu.Lock()
					switch {
					case res.Err == nil:
						w.completed++
					case errors.Is(res.Err, sdk.ErrTaskLost):
						w.lost++
					default:
						mu.Unlock()
						errs <- fmt.Errorf("task failed: %v", res.Err)
						return
					}
					mu.Unlock()
				}
			}(gi, g)
		}
		wg.Wait()
		close(errs)
		if err := <-errs; err != nil {
			return nil, err
		}
		w.tasks = tasksPerWave / len(groups) * len(groups)
		w.wall = time.Since(start)
		p1, r1 := gatewayTotals()
		w.proxied, w.redirected = p1-p0, r1-r0
		if w.lost != 0 || w.completed != w.tasks {
			return nil, fmt.Errorf("%s: %d/%d completed, %d lost — task loss across sharded fabric",
				name, w.completed, w.tasks, w.lost)
		}
		if w.proxied == 0 {
			return nil, fmt.Errorf("%s: no submissions were proxied; front doors were owners", name)
		}
		return w, nil
	}

	run := &shardingServeRun{}
	w1, err := runWave("wave-1", fnID)
	if err != nil {
		return nil, err
	}
	run.waves = append(run.waves, *w1)

	// Kill the shard owning group 0 (wave 1 fully gathered, so nothing
	// is in flight there), restart it fresh, and re-provision: same
	// ring identity, shared-nothing state rebuilt.
	victim := sf.OwnerIndex(shard.GroupKey(groups[0].ID))
	if err := sf.KillShard(victim); err != nil {
		return nil, err
	}
	if _, err := sf.RestartShard(victim); err != nil {
		return nil, err
	}
	for i, g := range groups {
		if sf.OwnerIndex(shard.GroupKey(g.ID)) == victim {
			if groups[i], err = provisionShard(sf, victim, opts.Seed+100); err != nil {
				return nil, fmt.Errorf("re-provision shard %d: %w", victim, err)
			}
		}
	}
	// Re-register the function so the restarted shard holds a replica
	// again (registered via a survivor: the broadcast must reach the
	// restarted shard).
	fnID2, err := regClient.RegisterFunction(ctx, "echo", fx.BodyEcho, types.ContainerSpec{}, nil)
	if err != nil {
		return nil, err
	}
	w2, err := runWave("wave-2", fnID2)
	if err != nil {
		return nil, err
	}
	run.waves = append(run.waves, *w2)
	return run, nil
}

// --- part 2: aggregate submit throughput ---

// shardingWebWorkers models each instance's fixed web-worker pool.
const shardingWebWorkers = 4

type shardingTput struct {
	wall time.Duration
	rate float64
}

// shardingThroughput times a burst of concurrent submissions against
// one service instance or a 3-shard fabric (entry "owner" = clients
// hit the shard owning their group; "nonowner" = every submission
// enters a wrong shard and is proxied). Execution and gathering happen
// off the clock — the measured quantity is submit throughput.
func shardingThroughput(opts Options, entry string, tasks, submitters int) (*shardingTput, error) {
	svcCfg := service.Config{
		HeartbeatPeriod:   50 * time.Millisecond,
		SubmitConcurrency: shardingWebWorkers,
		AuthLat:           netlat.NewLink(2*time.Millisecond, 200*time.Microsecond, opts.Seed+31),
	}
	ctx := context.Background()

	var groups []*types.EndpointGroup
	var clientFor func(gi int, uid types.UserID) *sdk.Client
	var fnID types.FunctionID

	addIsland := func(fab *core.Fabric, i int) (*types.EndpointGroup, error) {
		eps := make([]*core.Endpoint, 2)
		for j := range eps {
			ep, err := fab.AddEndpoint(core.EndpointOptions{
				Name: fmt.Sprintf("tp%d-ep%d", i, j), Owner: "experimenter",
				Managers: 1, WorkersPerManager: 4, PrewarmWorkers: 4,
				BatchDispatch:   true,
				HeartbeatPeriod: 50 * time.Millisecond,
				Seed:            opts.Seed + int64(i*10+j),
			})
			if err != nil {
				return nil, err
			}
			if err := ep.WaitForWorkers(1, 5*time.Second); err != nil {
				return nil, err
			}
			eps[j] = ep
		}
		return fab.GroupOf("experimenter", fmt.Sprintf("tp%d-fleet", i), "least-outstanding", eps...)
	}

	if entry == "single" {
		fab, err := core.NewFabric(core.FabricConfig{Service: svcCfg})
		if err != nil {
			return nil, err
		}
		defer fab.Close()
		groups = make([]*types.EndpointGroup, 3)
		for i := range groups {
			if groups[i], err = addIsland(fab, i); err != nil {
				return nil, err
			}
		}
		reg := fab.Client("experimenter")
		defer reg.Close()
		if fnID, err = reg.RegisterFunction(ctx, "noop", fx.BodyNoop, types.ContainerSpec{}, nil); err != nil {
			return nil, err
		}
		clientFor = func(_ int, uid types.UserID) *sdk.Client { return fab.Client(uid) }
	} else {
		sf, err := core.NewShardedFabric(core.ShardedFabricConfig{
			Shards:  3,
			Service: svcCfg,
			Ring:    shard.Config{Seed: opts.Seed},
		})
		if err != nil {
			return nil, err
		}
		defer sf.Close()
		groups = make([]*types.EndpointGroup, 3)
		for i := range groups {
			if groups[i], err = provisionShard(sf, i, opts.Seed+50); err != nil {
				return nil, err
			}
		}
		reg := sf.ClientVia(0, "experimenter")
		defer reg.Close()
		if fnID, err = reg.RegisterFunction(ctx, "noop", fx.BodyNoop, types.ContainerSpec{}, nil); err != nil {
			return nil, err
		}
		clientFor = func(gi int, uid types.UserID) *sdk.Client {
			owner := sf.OwnerIndex(shard.GroupKey(groups[gi].ID))
			if entry == "owner" {
				return sf.ClientVia(owner, uid)
			}
			return sf.ClientVia((owner+1)%3, uid)
		}
	}

	// One client per submitter, built before the clock starts.
	perSubmitter := tasks / submitters
	type lane struct {
		client *sdk.Client
		gid    types.GroupID
		ids    []types.TaskID
	}
	lanes := make([]*lane, submitters)
	for i := range lanes {
		gi := i % len(groups)
		lanes[i] = &lane{
			client: clientFor(gi, "experimenter"),
			gid:    groups[gi].ID,
		}
	}
	defer func() {
		for _, l := range lanes {
			l.client.Close()
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, submitters)
	start := time.Now()
	for _, l := range lanes {
		wg.Add(1)
		go func(l *lane) {
			defer wg.Done()
			for t := 0; t < perSubmitter; t++ {
				id, _, err := l.client.Submit(ctx, sdk.SubmitSpec{Function: fnID, Group: l.gid})
				if err != nil {
					errs <- err
					return
				}
				l.ids = append(l.ids, id)
			}
		}(l)
	}
	wg.Wait()
	wall := time.Since(start)
	close(errs)
	if err := <-errs; err != nil {
		return nil, err
	}

	// Drain every task off the clock so the fabric shuts down clean
	// and nothing was silently dropped.
	gctx, cancel := context.WithTimeout(ctx, 2*time.Minute)
	defer cancel()
	for _, l := range lanes {
		results, err := l.client.GetResults(gctx, l.ids)
		if err != nil {
			return nil, fmt.Errorf("gather: %w", err)
		}
		for _, res := range results {
			if res == nil || res.Err != nil {
				return nil, fmt.Errorf("throughput task failed: %+v", res)
			}
		}
	}
	submitted := perSubmitter * submitters
	return &shardingTput{wall: wall, rate: float64(submitted) / wall.Seconds()}, nil
}
