package experiments

import (
	"context"
	"fmt"
	"time"

	"funcx/internal/api"
	"funcx/internal/core"
	"funcx/internal/fx"
	"funcx/internal/metrics"
	"funcx/internal/sdk"
	"funcx/internal/service"
	"funcx/internal/types"
)

func init() { register("latency", TraceLatency) }

// TraceLatency exercises the end-to-end tracing pipeline: it runs
// sleep tasks on a local fabric, pulls each task's recorded timeline
// from GET /v1/tasks/{id}/trace, and prints the paper's §5.1-style
// per-stage latency decomposition (submit, queue, dispatch, execute,
// return, publish) folded from the service's own trace collector
// rather than client-side timers.
//
// Two invariants are enforced, and their violation fails the
// experiment (CI runs this):
//
//   - the six stages partition the service-side total exactly;
//   - the mean service-side total reconciles with the mean
//     client-observed round trip within 10% (the client adds only
//     local HTTP overhead on an in-process fabric).
func TraceLatency(opts Options) error {
	n, sleep := 40, 50*time.Millisecond
	if opts.Quick {
		n, sleep = 15, 30*time.Millisecond
	}

	// No injected WAN/auth latency: the client-observed round trip
	// must be attributable to the traced stages for the
	// reconciliation check to be meaningful.
	fab, err := core.NewFabric(core.FabricConfig{
		Service: service.Config{HeartbeatPeriod: 50 * time.Millisecond},
	})
	if err != nil {
		return err
	}
	defer fab.Close()
	ep, err := fab.AddEndpoint(core.EndpointOptions{
		Name: "local", Owner: "experimenter",
		Managers: 1, WorkersPerManager: 2, PrewarmWorkers: 2,
		HeartbeatPeriod: 50 * time.Millisecond,
		Seed:            opts.Seed,
	})
	if err != nil {
		return err
	}
	client := fab.Client("experimenter")
	ctx := context.Background()
	fnID, err := client.RegisterFunction(ctx, "fsleep", fx.BodySleep, types.ContainerSpec{}, nil)
	if err != nil {
		return err
	}
	payload := fx.SleepArgs(sleep.Seconds())

	// Warm the path so container deploys don't skew the decomposition.
	for i := 0; i < 3; i++ {
		id, err := client.Run(ctx, fnID, ep.ID, payload)
		if err != nil {
			return err
		}
		if _, err := client.GetResult(ctx, id); err != nil {
			return err
		}
	}

	stages := []string{"submit", "queue", "dispatch", "execute", "return", "publish"}
	sums := make(map[string]*metrics.Summary, len(stages))
	for _, s := range stages {
		sums[s] = metrics.NewSummary()
	}
	totals := metrics.NewSummary()
	observed := metrics.NewSummary()
	remoteExec := metrics.NewSummary()

	for i := 0; i < n; i++ {
		begin := time.Now()
		id, err := client.Run(ctx, fnID, ep.ID, payload)
		if err != nil {
			return err
		}
		if _, err := client.GetResult(ctx, id); err != nil {
			return err
		}
		observed.Add(time.Since(begin))

		tr, err := finishedTrace(ctx, client, id)
		if err != nil {
			return err
		}
		d := tr.Decomposition
		sums["submit"].Add(time.Duration(d.SubmitNanos))
		sums["queue"].Add(time.Duration(d.QueueNanos))
		sums["dispatch"].Add(time.Duration(d.DispatchNanos))
		sums["execute"].Add(time.Duration(d.ExecuteNanos))
		sums["return"].Add(time.Duration(d.ReturnNanos))
		sums["publish"].Add(time.Duration(d.PublishNanos))
		totals.Add(time.Duration(d.TotalNanos))
		if tr.Remote != nil {
			remoteExec.Add(time.Duration(tr.Remote.ExecNanos))
		}

		// Exact partition: the stages must sum to the total.
		stageSum := d.SubmitNanos + d.QueueNanos + d.DispatchNanos +
			d.ExecuteNanos + d.ReturnNanos + d.PublishNanos
		if stageSum != d.TotalNanos {
			return fmt.Errorf("latency: task %s stages sum to %d ns but total is %d ns", id, stageSum, d.TotalNanos)
		}
	}

	tbl := metrics.NewTable("stage", "mean (ms)", "share", "meaning")
	meaning := map[string]string{
		"submit":   "auth + store + route (TS analogue)",
		"queue":    "waiting for forwarder dispatch",
		"dispatch": "in flight / queued at the endpoint",
		"execute":  "worker run time (endpoint clock)",
		"return":   "result's trip back to the service",
		"publish":  "store + terminal event fan-out",
	}
	for _, s := range stages {
		share := 0.0
		if totals.Mean() > 0 {
			share = float64(sums[s].Mean()) / float64(totals.Mean()) * 100
		}
		tbl.AddRow(s, metrics.FormatMS(sums[s].Mean()), fmt.Sprintf("%.1f%%", share), meaning[s])
	}
	tbl.AddRow("service total", metrics.FormatMS(totals.Mean()), "100%", "submit arrival -> terminal publish")
	tbl.AddRow("client observed", metrics.FormatMS(observed.Mean()), "", "submit call -> result in hand")
	tbl.AddRow("worker-reported exec", metrics.FormatMS(remoteExec.Mean()), "", "endpoint-side delta (skew-free)")
	fmt.Fprint(opts.out(), tbl.Render())

	// Reconciliation: the traced total must explain the client's
	// observation within 10%.
	gap := observed.Mean() - totals.Mean()
	if gap < 0 {
		gap = -gap
	}
	frac := float64(gap) / float64(observed.Mean())
	fmt.Fprintf(opts.out(), "reconciliation: |observed - traced| = %s (%.1f%% of observed, budget 10%%)\n",
		metrics.FormatMS(gap), frac*100)
	if frac > 0.10 {
		return fmt.Errorf("latency: traced total %v does not reconcile with observed %v (%.1f%% > 10%%)",
			totals.Mean(), observed.Mean(), frac*100)
	}
	return nil
}

// finishedTrace fetches a task's trace, retrying briefly until the
// timeline is marked done (result retrieval can race the terminal
// publish by a scheduler tick).
func finishedTrace(ctx context.Context, client *sdk.Client, id types.TaskID) (*api.TaskTraceResponse, error) {
	deadline := time.Now().Add(2 * time.Second)
	for {
		tr, err := client.TaskTrace(ctx, id)
		if err != nil {
			return nil, err
		}
		if tr.Done && tr.Decomposition != nil {
			return tr, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("latency: task %s trace never finished (done=%v)", id, tr.Done)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
