// Package experiments contains one driver per table and figure of the
// paper's §5 evaluation. Each driver runs its workload — on the real
// in-process fabric or on the calibrated discrete-event model — and
// prints a paper-versus-measured table. The drivers are shared by the
// funcx-bench binary and by the top-level benchmarks.
package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Options tune experiment scale.
type Options struct {
	// Quick shrinks sample counts so the full suite runs in seconds
	// (benchmarks and CI); the bench binary's default is full scale.
	Quick bool
	// Seed makes runs reproducible.
	Seed int64
	// Out receives the rendered tables.
	Out io.Writer
}

func (o *Options) out() io.Writer {
	if o.Out == nil {
		return io.Discard
	}
	return o.Out
}

// Runner executes one experiment.
type Runner func(Options) error

// registry maps experiment ids to runners, populated by init()s in
// this package.
var registry = map[string]Runner{}

// names in registration order for deterministic listing.
var names []string

func register(name string, r Runner) {
	registry[name] = r
	names = append(names, name)
}

// Names lists all experiment ids in a stable order.
func Names() []string {
	out := append([]string(nil), names...)
	sort.Strings(out)
	return out
}

// Run executes one experiment by id ("all" runs everything).
func Run(name string, opts Options) error {
	if name == "all" {
		for _, n := range names {
			fmt.Fprintf(opts.out(), "\n=== %s ===\n", n)
			if err := registry[n](opts); err != nil {
				return fmt.Errorf("experiment %s: %w", n, err)
			}
		}
		return nil
	}
	r, ok := registry[name]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	return r(opts)
}
