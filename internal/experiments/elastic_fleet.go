package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"funcx/internal/core"
	"funcx/internal/elastic"
	"funcx/internal/fx"
	"funcx/internal/metrics"
	"funcx/internal/provider"
	"funcx/internal/service"
	"funcx/internal/types"
)

func init() { register("elastic", ElasticFleet) }

// ElasticFleet measures the fleet elasticity controller (the step
// beyond Figure 6's per-endpoint scaling, toward the TPDS 2022
// managed-elasticity model): one hot group of four heterogeneous
// elastic endpoints absorbs a bursty workload twice — once with the
// service-side controller pushing scaling advice and once with each
// endpoint's local policy on its own — and the driver reports fleet
// blocks over time, latency percentiles, and completion counts. Every
// task must complete in both runs (zero loss), and the controller run
// should provision the fleet faster and cut tail latency: local
// policies each see only their own queue, while the controller
// converts group-wide backlog into per-member targets the moment the
// burst lands.
func ElasticFleet(opts Options) error {
	bursts, perBurst := 3, 48
	if opts.Quick {
		bursts, perBurst = 2, 32
	}

	on, err := elasticFleetRun(opts, true, bursts, perBurst)
	if err != nil {
		return fmt.Errorf("controller on: %w", err)
	}
	off, err := elasticFleetRun(opts, false, bursts, perBurst)
	if err != nil {
		return fmt.Errorf("controller off: %w", err)
	}

	// Fleet blocks over time, bucketed.
	bucket := 250 * time.Millisecond
	total := on.wall
	if off.wall > total {
		total = off.wall
	}
	tbl := metrics.NewTable("t (s)", "blocks (controller on)", "blocks (controller off)")
	for t := time.Duration(0); t < total; t += bucket {
		tbl.AddRow(fmt.Sprintf("%.2f", t.Seconds()),
			fmt.Sprintf("%.0f", on.blocks.MaxIn(t, t+bucket)),
			fmt.Sprintf("%.0f", off.blocks.MaxIn(t, t+bucket)))
	}
	fmt.Fprint(opts.out(), tbl.Render())

	sum := metrics.NewTable("controller", "tasks", "done", "wall (s)", "peak blocks",
		"p50 (ms)", "p95 (ms)", "p99 (ms)")
	for _, r := range []*elasticRun{on, off} {
		name := "off"
		if r.advised {
			name = "on"
		}
		sum.AddRow(name, fmt.Sprint(r.tasks), fmt.Sprint(r.done),
			fmt.Sprintf("%.2f", r.wall.Seconds()),
			fmt.Sprint(r.peakBlocks),
			fmt.Sprintf("%.1f", float64(r.lat.Percentile(50))/float64(time.Millisecond)),
			fmt.Sprintf("%.1f", float64(r.lat.Percentile(95))/float64(time.Millisecond)),
			fmt.Sprintf("%.1f", float64(r.lat.Percentile(99))/float64(time.Millisecond)))
	}
	fmt.Fprint(opts.out(), sum.Render())

	onP99 := on.lat.Percentile(99)
	offP99 := off.lat.Percentile(99)
	verdict := "controller-on beats controller-off"
	if onP99 >= offP99 {
		verdict = "controller-on did NOT beat controller-off (timing noise; rerun at full scale)"
	}
	fmt.Fprintf(opts.out(),
		"bursty workload on 4 heterogeneous elastic endpoints; zero task loss in both runs; p99 %s vs %s: %s\n",
		onP99.Round(time.Millisecond), offP99.Round(time.Millisecond), verdict)
	fmt.Fprintln(opts.out(),
		"scale-out under backlog and scale-in after idle are visible in the blocks-over-time column")
	return nil
}

type elasticRun struct {
	advised    bool
	tasks      int
	done       int
	wall       time.Duration
	lat        *metrics.Summary
	blocks     *metrics.Series
	peakBlocks int
}

// elasticFleetRun boots a fresh 4-endpoint elastic fleet, drives the
// bursty workload at the group, and samples fleet-wide provisioned
// blocks through the elasticity status endpoint.
func elasticFleetRun(opts Options, advised bool, bursts, perBurst int) (*elasticRun, error) {
	fab, err := core.NewFabric(core.FabricConfig{
		Service: service.Config{
			HeartbeatPeriod: 25 * time.Millisecond,
			HeartbeatMisses: 3,
			ElasticInterval: 25 * time.Millisecond,
		},
	})
	if err != nil {
		return nil, err
	}
	defer fab.Close()

	// Heterogeneous fleet: different per-node worker counts and block
	// ceilings. All capacity is provider-driven (Managers: 0).
	workers := []int{4, 2, 2, 1}
	maxBlocks := []int{6, 6, 6, 6}
	eps := make([]*core.Endpoint, len(workers))
	for i, w := range workers {
		eps[i], err = fab.AddEndpoint(core.EndpointOptions{
			Name:  fmt.Sprintf("elastic-ep-%d", i),
			Owner: "experimenter", Managers: 0, WorkersPerManager: w,
			BatchDispatch:   true,
			HeartbeatPeriod: 25 * time.Millisecond,
			Seed:            opts.Seed + int64(i),
		})
		if err != nil {
			return nil, err
		}
		seed := opts.Seed + int64(i)
		idx := i
		err = eps[i].EnableElasticity(core.ElasticOptions{
			NewProvider: func(hooks provider.Hooks) provider.Provider {
				// Pod-like provisioning with a visible cold start
				// (5–25 ms queue, 50–150 ms boot).
				return provider.NewK8sSim(maxBlocks[idx]+2, 0.05, seed, hooks)
			},
			Policy: provider.ScalingPolicy{
				// Deliberately conservative local rules: the paper's
				// per-endpoint elasticity reacts to the local queue
				// with damped aggressiveness. The controller's advice
				// overrides upward within MaxBlocks when the *group*
				// is hot.
				MinBlocks: 0, MaxBlocks: maxBlocks[idx],
				TasksPerNode: 4, Aggressiveness: 0.5,
				IdleTimeout: 400 * time.Millisecond,
			},
			Interval: 20 * time.Millisecond,
		})
		if err != nil {
			return nil, err
		}
	}

	var spec *types.ElasticSpec
	if advised {
		spec = &types.ElasticSpec{
			Strategy:      elastic.StrategyColdStart,
			TasksPerBlock: 1,
		}
	}
	group, err := fab.AddGroup(core.GroupOptions{
		Name: "elastic-fleet", Owner: "experimenter",
		Members: []types.GroupMember{
			{EndpointID: eps[0].ID}, {EndpointID: eps[1].ID},
			{EndpointID: eps[2].ID}, {EndpointID: eps[3].ID},
		},
		Elastic: spec,
	})
	if err != nil {
		return nil, err
	}

	client := fab.Client("experimenter")
	ctx := context.Background()
	fnID, err := client.RegisterFunction(ctx, "sleep", fx.BodySleep, types.ContainerSpec{}, nil)
	if err != nil {
		return nil, err
	}

	run := &elasticRun{advised: advised, tasks: bursts * perBurst, lat: metrics.NewSummary()}
	origin := time.Now()
	run.blocks = metrics.NewSeriesAt("fleet blocks", origin)

	// Sample fleet-wide provisioned blocks through the elasticity API.
	sampleCtx, stopSampling := context.WithCancel(ctx)
	defer stopSampling()
	var samplerDone sync.WaitGroup
	samplerDone.Add(1)
	go func() {
		defer samplerDone.Done()
		ticker := time.NewTicker(50 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-sampleCtx.Done():
				return
			case <-ticker.C:
				st, err := client.GroupElasticity(ctx, group.ID)
				if err != nil {
					continue
				}
				blocks := 0
				for _, m := range st.Members {
					blocks += m.Status.LiveBlocks
				}
				run.blocks.Record(float64(blocks))
				if blocks > run.peakBlocks {
					run.peakBlocks = blocks
				}
			}
		}
	}()

	// Bursty workload: perBurst 100 ms sleeps slam the group at once,
	// then an idle gap long enough for scale-in to begin.
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	gatherCtx, cancel := context.WithTimeout(ctx, 2*time.Minute)
	defer cancel()
	for b := 0; b < bursts; b++ {
		for i := 0; i < perBurst; i++ {
			submitted := time.Now()
			id, _, err := client.RunAnywhere(ctx, fnID, group.ID, fx.SleepArgs(0.1))
			if err != nil {
				return nil, err
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				res, err := client.GetResult(gatherCtx, id)
				if err != nil || res.Err != nil {
					return
				}
				mu.Lock()
				run.lat.Add(time.Since(submitted))
				run.done++
				mu.Unlock()
			}()
		}
		if b < bursts-1 {
			time.Sleep(900 * time.Millisecond)
		}
	}
	wg.Wait()
	run.wall = time.Since(origin)
	// Observe scale-in after the last burst drains.
	time.Sleep(700 * time.Millisecond)
	stopSampling()
	samplerDone.Wait()

	if run.done != run.tasks {
		return nil, fmt.Errorf("task loss: %d/%d completed", run.done, run.tasks)
	}
	return run, nil
}
