package experiments

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"funcx/internal/core"
	"funcx/internal/fx"
	"funcx/internal/metrics"
	"funcx/internal/sdk"
	"funcx/internal/serial"
	"funcx/internal/service"
	"funcx/internal/types"
)

func init() { register("reliability", Reliability) }

// bodyCountOnce is the execution-counter function of the delivery-
// semantics experiment: every execution of a key increments a shared
// counter, so duplicate executions (at-least-once retries) and double
// executions (at-most-once violations) are directly observable.
var bodyCountOnce = []byte("def count_once(key):\n    COUNTS[key] += 1\n    import time\n    time.sleep(0.02)\n    return key\n")

// Reliability measures the delivery-semantics layer (paper §5.4's
// fault-tolerance story made a configurable contract): a fleet of
// three endpoints serves execution-counting tasks while one agent is
// killed mid-run, under both delivery modes:
//
//	at-least-once  (default) dispatched tasks on the dead agent are
//	               reclaimed and re-routed; every task completes, and
//	               retries may double-execute
//	at-most-once   dispatched tasks on the dead agent are never
//	               redelivered; they resolve fast as TaskLost and no
//	               task executes twice
//
// In both modes every future resolves (no hangs), and the per-task
// event order queued ≤ dispatched ≤ running ≤ terminal must hold on
// the owner's event stream.
func Reliability(opts Options) error {
	tasks := 120
	if opts.Quick {
		tasks = 60
	}
	tbl := metrics.NewTable("mode", "tasks", "completed", "lost", "dup execs",
		"retried", "rerouted", "order violations", "wall (s)")
	for _, mode := range []string{"at-least-once", "at-most-once"} {
		r, err := reliabilityMode(opts, mode, tasks)
		if err != nil {
			return fmt.Errorf("%s: %w", mode, err)
		}
		tbl.AddRow(mode, fmt.Sprint(tasks), fmt.Sprint(r.completed), fmt.Sprint(r.lost),
			fmt.Sprint(r.duplicates), fmt.Sprint(r.retried), fmt.Sprint(r.rerouted),
			fmt.Sprint(r.orderViolations), fmt.Sprintf("%.2f", r.wall.Seconds()))
	}
	fmt.Fprint(opts.out(), tbl.Render())
	fmt.Fprintln(opts.out(), "3 endpoints (4 workers each); endpoint 0's agent killed halfway; every future resolves in both modes")
	return nil
}

type reliabilityRun struct {
	completed       int
	lost            int
	duplicates      int
	retried         int64
	rerouted        int64
	orderViolations int
	wall            time.Duration
}

// reliabilityMode boots a fresh 3-endpoint fabric, streams execution-
// counting tasks at the group in the given delivery mode, kills one
// agent mid-submission, and audits completions, duplicate executions,
// and per-task event order.
func reliabilityMode(opts Options, mode string, tasks int) (*reliabilityRun, error) {
	fab, err := core.NewFabric(core.FabricConfig{
		Service: service.Config{
			HeartbeatPeriod: 50 * time.Millisecond,
			HeartbeatMisses: 3,
		},
	})
	if err != nil {
		return nil, err
	}
	defer fab.Close()

	// Shared execution counter: one entry per task key, incremented by
	// whichever endpoint (and attempt) runs it.
	var execMu sync.Mutex
	execs := make(map[string]int)
	countFn := func(_ context.Context, payload []byte) ([]byte, error) {
		var key string
		if _, err := serial.Deserialize(payload, &key); err != nil {
			return nil, err
		}
		execMu.Lock()
		execs[key]++
		execMu.Unlock()
		time.Sleep(20 * time.Millisecond)
		return serial.Serialize(key)
	}

	eps := make([]*core.Endpoint, 3)
	for i := range eps {
		eps[i], err = fab.AddEndpoint(core.EndpointOptions{
			Name:  fmt.Sprintf("rel-ep-%d", i),
			Owner: "experimenter", Managers: 1, WorkersPerManager: 4,
			PrewarmWorkers: 4, BatchDispatch: true,
			HeartbeatPeriod: 50 * time.Millisecond,
			Seed:            opts.Seed + int64(i),
		})
		if err != nil {
			return nil, err
		}
		eps[i].Runtime.RegisterHash(fx.HashBody(bodyCountOnce), countFn)
	}
	group, err := fab.GroupOf("experimenter", "rel-fleet", "least-outstanding", eps...)
	if err != nil {
		return nil, err
	}
	client := fab.Client("experimenter")
	defer client.Close()
	ctx := context.Background()
	fnID, err := client.RegisterFunction(ctx, "count_once", bodyCountOnce, types.ContainerSpec{}, nil)
	if err != nil {
		return nil, err
	}

	// Audit the owner's event stream directly on the bus (the same
	// publishes that feed GET /v1/events), collecting concurrently so
	// the subscription never lags.
	sub := fab.Service.Events.Subscribe(types.UserID("experimenter"))
	var evMu sync.Mutex
	var events []types.TaskEvent
	var collectorDone sync.WaitGroup
	collectorDone.Add(1)
	go func() {
		defer collectorDone.Done()
		for ev := range sub.C {
			evMu.Lock()
			events = append(events, ev)
			evMu.Unlock()
		}
	}()

	submit := func(i int) (*sdk.Future, error) {
		payload, err := serial.Serialize(fmt.Sprintf("task-%d", i))
		if err != nil {
			return nil, err
		}
		return client.SubmitFuture(ctx, sdk.SubmitSpec{
			Function: fnID, Group: group.ID, Payload: payload,
			Walltime:   200 * time.Millisecond,
			AtMostOnce: mode == "at-most-once",
		})
	}

	start := time.Now()
	futures := make([]*sdk.Future, 0, tasks)
	for i := 0; i < tasks; i++ {
		if i == tasks/2 {
			// Kill one agent mid-run — but only once it genuinely holds
			// dispatched tasks, so the kill lands mid-execution and the
			// reclaim path (not just queued-task failover) is exercised.
			fwd, _ := fab.Service.Forwarder(eps[0].ID)
			for deadline := time.Now().Add(2 * time.Second); fwd.Outstanding() == 0 && time.Now().Before(deadline); {
				time.Sleep(time.Millisecond)
			}
			if fwd.Outstanding() == 0 {
				return nil, fmt.Errorf("endpoint 0 never had dispatched tasks to kill")
			}
			eps[0].Disconnect()
		}
		fut, err := submit(i)
		if err != nil {
			return nil, err
		}
		futures = append(futures, fut)
	}

	// Every future must resolve — delivery semantics means a terminal
	// event per task, never a hang.
	gatherCtx, cancel := context.WithTimeout(ctx, time.Minute)
	defer cancel()
	run := &reliabilityRun{}
	for _, fut := range futures {
		res, err := fut.Get(gatherCtx)
		if err != nil {
			return nil, fmt.Errorf("future did not resolve: %w", err)
		}
		switch {
		case res.Err == nil:
			run.completed++
		case errors.Is(res.Err, sdk.ErrTaskLost):
			run.lost++
		default:
			return nil, fmt.Errorf("task %s failed unexpectedly: %v", res.TaskID, res.Err)
		}
	}
	run.wall = time.Since(start)
	sub.Cancel()
	collectorDone.Wait()

	execMu.Lock()
	for _, n := range execs {
		if n > 1 {
			run.duplicates++
		}
	}
	execMu.Unlock()
	run.retried, _ = fab.Service.DeliveryStats()
	run.rerouted = fab.Service.Rerouted()

	submitted := make(map[types.TaskID]bool, len(futures))
	for _, fut := range futures {
		submitted[fut.TaskID()] = true
	}
	evMu.Lock()
	run.orderViolations = countOrderViolations(events, submitted)
	evMu.Unlock()

	// Mode invariants.
	switch mode {
	case "at-least-once":
		if run.completed != tasks {
			return nil, fmt.Errorf("only %d/%d tasks completed after agent kill", run.completed, tasks)
		}
		if run.lost != 0 {
			return nil, fmt.Errorf("%d tasks lost in at-least-once mode", run.lost)
		}
	case "at-most-once":
		if run.duplicates != 0 {
			return nil, fmt.Errorf("%d tasks executed twice in at-most-once mode", run.duplicates)
		}
		if run.completed+run.lost != tasks {
			return nil, fmt.Errorf("%d completed + %d lost != %d submitted", run.completed, run.lost, tasks)
		}
	}
	if run.orderViolations != 0 {
		return nil, fmt.Errorf("%d per-task event-order violations on the stream", run.orderViolations)
	}
	return run, nil
}

// countOrderViolations audits each submitted task's event sequence:
// the first event must be queued, a running event must follow some
// dispatched event, exactly one terminal event retires the task, and
// nothing may follow it. Redeliveries legitimately repeat the
// queued/dispatched/running prefix.
func countOrderViolations(events []types.TaskEvent, submitted map[types.TaskID]bool) int {
	type state struct {
		seen       int
		dispatched bool
		terminals  int
		afterEnd   bool
		badFirst   bool
		earlyRun   bool
	}
	byTask := make(map[types.TaskID]*state, len(submitted))
	for _, ev := range events {
		if !submitted[ev.TaskID] {
			continue
		}
		st := byTask[ev.TaskID]
		if st == nil {
			st = &state{}
			byTask[ev.TaskID] = st
		}
		if st.terminals > 0 {
			st.afterEnd = true
		}
		if st.seen == 0 && ev.Status != types.TaskQueued {
			st.badFirst = true
		}
		st.seen++
		switch ev.Status {
		case types.TaskDispatched:
			st.dispatched = true
		case types.TaskRunning:
			if !st.dispatched {
				st.earlyRun = true
			}
		default:
			if ev.Terminal() {
				st.terminals++
			}
		}
	}
	violations := 0
	for id := range submitted {
		st := byTask[id]
		if st == nil || st.terminals != 1 || st.afterEnd || st.badFirst || st.earlyRun {
			violations++
		}
	}
	return violations
}
