package container

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"funcx/internal/types"
)

func TestProfileSamplesWithinTable2Bounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for name, model := range Profiles {
		var sum time.Duration
		const n = 2000
		for i := 0; i < n; i++ {
			d := model.Sample(rng)
			if d < model.Min || d > model.Max {
				t.Fatalf("%s: sample %v outside [%v, %v]", name, d, model.Min, model.Max)
			}
			sum += d
		}
		mean := sum / n
		// Sampled mean within 15% of the calibrated mean.
		lo := time.Duration(float64(model.Mean) * 0.85)
		hi := time.Duration(float64(model.Mean) * 1.15)
		if mean < lo || mean > hi {
			t.Fatalf("%s: sampled mean %v outside [%v, %v]", name, mean, lo, hi)
		}
	}
}

func TestProfileForFallbacks(t *testing.T) {
	if m := ProfileFor("anything", types.ContainerNone); m.Mean != 0 {
		t.Fatalf("ContainerNone mean = %v, want 0", m.Mean)
	}
	if m := ProfileFor("theta", types.ContainerSingularity); m.Mean != Profiles["theta/singularity"].Mean {
		t.Fatal("known profile not found")
	}
	// Unknown pairing gets a cloud-like default.
	if m := ProfileFor("unknown-system", types.ContainerDocker); m.Mean <= 0 {
		t.Fatal("unknown pairing has no default cost")
	}
}

func TestWarmPoolReuse(t *testing.T) {
	r := NewRuntime(Config{System: "ec2", Seed: 1, TimeScale: 0})
	spec := types.ContainerSpec{Tech: types.ContainerDocker, Image: "img"}

	first := r.Acquire(spec)
	if first.Warm {
		t.Fatal("first acquire reported warm")
	}
	if first.ColdStart <= 0 {
		t.Fatal("cold acquire has no cold-start cost")
	}
	r.Release(first)
	if r.WarmCount(spec) != 1 {
		t.Fatalf("WarmCount = %d", r.WarmCount(spec))
	}
	second := r.Acquire(spec)
	if !second.Warm || second.ColdStart != 0 {
		t.Fatalf("second acquire = %+v, want warm", second)
	}
	cold, warm, _ := r.Stats()
	if cold != 1 || warm != 1 {
		t.Fatalf("stats = cold %d warm %d", cold, warm)
	}
}

func TestWarmPoolIsPerSpec(t *testing.T) {
	r := NewRuntime(Config{System: "ec2", Seed: 1})
	a := types.ContainerSpec{Tech: types.ContainerDocker, Image: "a"}
	b := types.ContainerSpec{Tech: types.ContainerDocker, Image: "b"}
	r.Release(r.Acquire(a))
	got := r.Acquire(b)
	if got.Warm {
		t.Fatal("warm hit across different images")
	}
}

func TestPruneExpired(t *testing.T) {
	r := NewRuntime(Config{System: "ec2", Seed: 1, WarmTTL: 50 * time.Millisecond})
	spec := types.ContainerSpec{Tech: types.ContainerDocker, Image: "img"}
	r.Release(r.Acquire(spec))
	if n := r.PruneExpired(time.Now()); n != 0 {
		t.Fatalf("fresh instance pruned: %d", n)
	}
	if n := r.PruneExpired(time.Now().Add(time.Second)); n != 1 {
		t.Fatalf("PruneExpired = %d, want 1", n)
	}
	if r.WarmCount(spec) != 0 {
		t.Fatal("pruned instance still pooled")
	}
}

func TestMaxWarmPerSpec(t *testing.T) {
	r := NewRuntime(Config{System: "ec2", Seed: 1, MaxWarmPerSpec: 1})
	spec := types.ContainerSpec{Tech: types.ContainerDocker, Image: "img"}
	i1 := r.Acquire(spec)
	i2 := r.Acquire(spec)
	r.Release(i1)
	r.Release(i2) // pool full: dropped
	if r.WarmCount(spec) != 1 {
		t.Fatalf("WarmCount = %d, want 1 (bounded)", r.WarmCount(spec))
	}
	_, _, evicted := r.Stats()
	if evicted != 1 {
		t.Fatalf("evictions = %d, want 1", evicted)
	}
}

func TestContentionInflatesColdStarts(t *testing.T) {
	base := 10 * time.Second
	r := NewRuntime(Config{System: "theta", ContentionFactor: 0.5})
	r.inflight = 8
	got := r.contendedLocked(base)
	if got <= base {
		t.Fatalf("contended %v <= base %v", got, base)
	}
	r.inflight = 1
	if got := r.contendedLocked(base); got != base {
		t.Fatalf("single start contended: %v", got)
	}
	r2 := NewRuntime(Config{System: "ec2"}) // no contention factor
	r2.inflight = 8
	if got := r2.contendedLocked(base); got != base {
		t.Fatalf("cloud runtime contended: %v", got)
	}
}

func TestTimeScaleSleeps(t *testing.T) {
	// With TimeScale, Acquire really sleeps (scaled) — measure one.
	r := NewRuntime(Config{System: "ec2", Seed: 1, TimeScale: 0.002}) // 1.79s -> ~3.6ms
	spec := types.ContainerSpec{Tech: types.ContainerDocker, Image: "img"}
	start := time.Now()
	inst := r.Acquire(spec)
	elapsed := time.Since(start)
	if elapsed < 2*time.Millisecond {
		t.Fatalf("scaled cold start slept only %v", elapsed)
	}
	if inst.ColdStart < time.Second {
		t.Fatalf("reported (unscaled) cold start = %v", inst.ColdStart)
	}
}

func TestSampleColdMatchesProfile(t *testing.T) {
	r := NewRuntime(Config{System: "cori", Seed: 3})
	d := r.SampleCold(types.ContainerShifter)
	m := Profiles["cori/shifter"]
	if d < m.Min || d > m.Max {
		t.Fatalf("SampleCold = %v outside profile bounds", d)
	}
}

func TestSampleClampProperty(t *testing.T) {
	m := Profiles["cori/shifter"]
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := m.Sample(rng)
		return d >= m.Min && d <= m.Max
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReleaseNil(t *testing.T) {
	r := NewRuntime(Config{System: "ec2"})
	r.Release(nil) // must not panic
}
