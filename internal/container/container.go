// Package container models the container technologies funcX uses to
// sandbox function execution (paper §4.2, §4.5, §5.5.1): Docker for
// cloud and local deployments, Singularity (ALCF/Theta) and Shifter
// (NERSC/Cori) for HPC facilities.
//
// What the evaluation measures is instantiation behaviour: cold starts
// cost seconds (Table 2), warm containers cost nothing, and HPC shared
// file systems make concurrent cold starts slower. This package
// provides:
//
//   - Model: a cold-start latency distribution per (system, technology)
//     calibrated to Table 2;
//   - Runtime: a per-node container manager with on-demand deployment,
//     a warm pool with TTL eviction (container warming, §4.7), and a
//     concurrent-start contention model.
//
// Instantiation can either really sleep (scaled, for wall-clock
// experiments) or merely report the sampled duration (for virtual-time
// simulation).
package container

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"funcx/internal/types"
)

// Model is the cold-start latency distribution for one container
// technology on one system. Samples follow a lognormal distribution
// with the given mean, clamped to [Min, Max] — matching the min/max/
// mean rows of Table 2.
type Model struct {
	// System names the compute resource ("theta", "cori", "ec2").
	System string
	// Tech is the container technology.
	Tech types.ContainerTech
	// Min, Max, Mean describe the instantiation time distribution.
	Min, Max, Mean time.Duration
	// Sigma is the lognormal shape parameter; larger values give
	// heavier tails (Cori's Shifter has a 31 s max on an 8.5 s mean).
	Sigma float64
}

// Sample draws one cold-start duration.
func (m Model) Sample(rng *rand.Rand) time.Duration {
	if m.Mean <= 0 {
		return 0
	}
	if m.Sigma <= 0 {
		return m.Mean
	}
	// Lognormal with E[X] = Mean: mu = ln(Mean) - sigma^2/2.
	mu := math.Log(float64(m.Mean)) - m.Sigma*m.Sigma/2
	x := math.Exp(mu + m.Sigma*rng.NormFloat64())
	d := time.Duration(x)
	if m.Min > 0 && d < m.Min {
		d = m.Min
	}
	if m.Max > 0 && d > m.Max {
		d = m.Max
	}
	return d
}

// Profiles holds the Table 2 calibrations, keyed by "system/tech".
var Profiles = map[string]Model{
	"theta/singularity": {
		System: "theta", Tech: types.ContainerSingularity,
		Min: 9830 * time.Millisecond, Max: 14060 * time.Millisecond,
		Mean: 10400 * time.Millisecond, Sigma: 0.10,
	},
	"cori/shifter": {
		System: "cori", Tech: types.ContainerShifter,
		Min: 7250 * time.Millisecond, Max: 31260 * time.Millisecond,
		Mean: 8490 * time.Millisecond, Sigma: 0.30,
	},
	"ec2/docker": {
		System: "ec2", Tech: types.ContainerDocker,
		Min: 1740 * time.Millisecond, Max: 1880 * time.Millisecond,
		Mean: 1790 * time.Millisecond, Sigma: 0.02,
	},
	"ec2/singularity": {
		System: "ec2", Tech: types.ContainerSingularity,
		Min: 1190 * time.Millisecond, Max: 1260 * time.Millisecond,
		Mean: 1220 * time.Millisecond, Sigma: 0.015,
	},
}

// ProfileFor returns the model for a system and technology, or a
// zero-latency model for ContainerNone / unknown pairs.
func ProfileFor(system string, tech types.ContainerTech) Model {
	if tech == types.ContainerNone || tech == "" {
		return Model{System: system, Tech: types.ContainerNone}
	}
	if m, ok := Profiles[system+"/"+string(tech)]; ok {
		return m
	}
	// Unknown pairing: assume cloud-Docker-like costs.
	return Model{
		System: system, Tech: tech,
		Min: 1500 * time.Millisecond, Max: 2500 * time.Millisecond,
		Mean: 1800 * time.Millisecond, Sigma: 0.05,
	}
}

// DefaultWarmTTL is how long an idle warm container is retained before
// eviction. The paper keeps containers warm for 5–10 minutes (§4.7).
const DefaultWarmTTL = 5 * time.Minute

// Instance is one deployed container able to host a funcX worker.
type Instance struct {
	// ID uniquely names the instance on its node.
	ID string
	// Spec is the environment it provides.
	Spec types.ContainerSpec
	// Started is when instantiation finished.
	Started time.Time
	// ColdStart is the instantiation cost paid (0 for warm reuse).
	ColdStart time.Duration
	// Warm reports whether the instance was served from the warm pool.
	Warm bool
}

// Config configures a per-node Runtime.
type Config struct {
	// System selects Table 2 calibrations ("theta", "cori", "ec2").
	System string
	// WarmTTL is the idle retention of warm containers
	// (DefaultWarmTTL when zero).
	WarmTTL time.Duration
	// Seed seeds the cold-start sampler (deterministic experiments).
	Seed int64
	// TimeScale multiplies real sleeps during instantiation: 1.0
	// sleeps the full sampled cold start, 0 disables sleeping
	// entirely (virtual-time mode), 0.001 turns 10 s into 10 ms.
	TimeScale float64
	// ContentionFactor models shared-filesystem contention: each
	// concurrent cold start on the node multiplies the sampled
	// duration by (1 + ContentionFactor*ln(1+inflight)). Zero
	// disables the effect (cloud nodes); HPC profiles use ~0.15.
	ContentionFactor float64
	// MaxWarmPerSpec bounds the warm pool size per container spec
	// (0 = unbounded).
	MaxWarmPerSpec int
}

// Runtime manages the containers of one compute node.
type Runtime struct {
	cfg Config

	mu       sync.Mutex
	rng      *rand.Rand
	warm     map[string][]*Instance // spec key -> idle warm instances
	inflight int                    // concurrent cold starts
	nextID   int

	// stats
	coldStarts int
	warmHits   int
	evictions  int
}

// NewRuntime creates a node-local container runtime.
func NewRuntime(cfg Config) *Runtime {
	if cfg.WarmTTL == 0 {
		cfg.WarmTTL = DefaultWarmTTL
	}
	return &Runtime{
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		warm: make(map[string][]*Instance),
	}
}

// Acquire obtains a container for spec: a warm instance when one is
// pooled, otherwise a cold instantiation whose cost is sampled from the
// system profile (and slept, scaled by TimeScale). The returned
// Instance reports which path was taken.
func (r *Runtime) Acquire(spec types.ContainerSpec) *Instance {
	key := spec.Key()
	r.mu.Lock()
	if pool := r.warm[key]; len(pool) > 0 {
		inst := pool[len(pool)-1]
		r.warm[key] = pool[:len(pool)-1]
		r.warmHits++
		r.mu.Unlock()
		inst.Warm = true
		inst.ColdStart = 0
		return inst
	}
	// Cold path: sample under lock (rng), sleep outside it.
	model := ProfileFor(r.cfg.System, spec.Tech)
	base := model.Sample(r.rng)
	r.inflight++
	contended := r.contendedLocked(base)
	r.coldStarts++
	r.nextID++
	id := fmt.Sprintf("%s-ctr-%d", r.cfg.System, r.nextID)
	r.mu.Unlock()

	if r.cfg.TimeScale > 0 && contended > 0 {
		time.Sleep(time.Duration(float64(contended) * r.cfg.TimeScale))
	}

	r.mu.Lock()
	r.inflight--
	r.mu.Unlock()

	return &Instance{
		ID:        id,
		Spec:      spec,
		Started:   time.Now(),
		ColdStart: contended,
		Warm:      false,
	}
}

// contendedLocked applies the shared-filesystem contention multiplier.
// Caller holds r.mu; r.inflight already counts this start.
func (r *Runtime) contendedLocked(base time.Duration) time.Duration {
	if r.cfg.ContentionFactor <= 0 || r.inflight <= 1 {
		return base
	}
	mult := 1 + r.cfg.ContentionFactor*math.Log(float64(r.inflight))
	return time.Duration(float64(base) * mult)
}

// SampleCold draws a cold-start duration without deploying anything —
// the hook used by the discrete-event simulator and Table 2 harness.
func (r *Runtime) SampleCold(tech types.ContainerTech) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return ProfileFor(r.cfg.System, tech).Sample(r.rng)
}

// Release returns an instance to the warm pool, where it remains
// reusable until WarmTTL elapses without use.
func (r *Runtime) Release(inst *Instance) {
	if inst == nil {
		return
	}
	key := inst.Spec.Key()
	inst.Started = time.Now() // reset idle clock
	r.mu.Lock()
	defer r.mu.Unlock()
	pool := r.warm[key]
	if r.cfg.MaxWarmPerSpec > 0 && len(pool) >= r.cfg.MaxWarmPerSpec {
		r.evictions++ // pool full: drop (container torn down)
		return
	}
	r.warm[key] = append(pool, inst)
}

// PruneExpired evicts warm instances idle longer than WarmTTL,
// returning the count evicted. Callers run this periodically.
func (r *Runtime) PruneExpired(now time.Time) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for key, pool := range r.warm {
		keep := pool[:0]
		for _, inst := range pool {
			if now.Sub(inst.Started) > r.cfg.WarmTTL {
				n++
				continue
			}
			keep = append(keep, inst)
		}
		if len(keep) == 0 {
			delete(r.warm, key)
		} else {
			r.warm[key] = keep
		}
	}
	r.evictions += n
	return n
}

// WarmCount returns the number of pooled warm instances for spec.
func (r *Runtime) WarmCount(spec types.ContainerSpec) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.warm[spec.Key()])
}

// Stats reports cumulative counters: cold starts, warm-pool hits, and
// evictions.
func (r *Runtime) Stats() (cold, warm, evicted int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.coldStarts, r.warmHits, r.evictions
}
