// Package endpoint implements the funcX agent (paper §4.3): the
// persistent process deployed on a resource's login node (or cloud
// instance, or laptop) that turns it into a function-serving endpoint.
//
// The agent:
//
//   - registers with the funcX service's forwarder and relays tasks and
//     results between the service and node managers;
//   - provisions managers through a pilot-job provider, scaling the
//     pool with the automatic scaling strategy (§4.4);
//   - allocates tasks to suitable managers with available capacity
//     using a greedy randomized scheduling algorithm (§4.5), routing on
//     container type;
//   - queues tasks internally so none are lost once delivered (§4.1);
//   - watches manager heartbeats with a watchdog and re-executes tasks
//     lost to failed managers (§4.3);
//   - amortizes communication with executor-side batching and relays
//     opportunistic prefetch capacity (§4.7).
package endpoint

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"sync"
	"time"

	"funcx/internal/transport"
	"funcx/internal/types"
	"funcx/internal/wire"
)

// SchedulingPolicy selects how the agent picks among managers with
// capacity. The paper uses the randomized policy; the alternatives
// exist for the scheduling ablation.
type SchedulingPolicy string

// Scheduling policies.
const (
	// ScheduleRandom picks uniformly among suitable managers (§4.5).
	ScheduleRandom SchedulingPolicy = "random"
	// ScheduleRoundRobin cycles through suitable managers.
	ScheduleRoundRobin SchedulingPolicy = "round-robin"
	// ScheduleFirstFit always picks the first suitable manager.
	ScheduleFirstFit SchedulingPolicy = "first-fit"
)

// Config parameterizes an endpoint agent.
type Config struct {
	// ID is the registered endpoint id.
	ID types.EndpointID
	// ServiceNetwork/ServiceAddr locate the forwarder's listener.
	ServiceNetwork string
	ServiceAddr    string
	// Token authenticates the endpoint (native client token).
	Token string
	// ListenNetwork is the transport for manager connections
	// ("inproc" default, "tcp" for multi-process deployments).
	ListenNetwork string
	// ListenAddr optionally pins the manager listener address.
	ListenAddr string
	// HeartbeatPeriod is the agent's heartbeat interval, both to the
	// forwarder and expected from managers.
	HeartbeatPeriod time.Duration
	// HeartbeatMisses is how many missed manager heartbeats mark a
	// manager lost.
	HeartbeatMisses int
	// Policy selects the scheduling policy (default random).
	Policy SchedulingPolicy
	// BatchDispatch enables executor-side batching (§4.7): fill each
	// manager's full advertised capacity per scheduling round. When
	// false, one task is dispatched per manager per capacity
	// advertisement (the §5.5.2 "disabled" baseline).
	BatchDispatch bool
	// MaxAttempts bounds task re-executions after manager loss
	// (0 = retry forever).
	MaxAttempts int
	// DisableAdvice drops incoming scaling-advice frames, keeping the
	// endpoint's scaling purely local (the funcx-endpoint CLI's
	// -no-advice flag).
	DisableAdvice bool
	// Seed seeds the randomized scheduler.
	Seed int64
	// Logger receives the agent's structured logs; every record carries
	// the endpoint id, and per-task records (receipt, completion) log at
	// Debug so a task id greps across the service and agent sides of a
	// dispatch. Nil means slog.Default().
	Logger *slog.Logger
}

// managerState is the agent's view of one registered manager.
type managerState struct {
	id       types.ManagerID
	conn     transport.Conn
	capacity *types.Capacity
	lastSeen time.Time
	// dispatched is decremented capacity bookkeeping between
	// advertisements.
	budget int
	// awaitingAdvert gates non-batched dispatch: one task per
	// advertisement round-trip.
	awaitingAdvert bool
	// outstanding tasks at this manager, by id.
	outstanding map[types.TaskID]*types.Task
	suspended   bool
}

// traceIDOf returns the task's service-propagated trace id for
// log↔span correlation ("" for unsampled tasks): the agent logs the
// exact id under which the service exports the task's spans.
func traceIDOf(t *types.Task) string {
	if t != nil && t.Trace != nil {
		return t.Trace.TraceID
	}
	return ""
}

// inflightTask tracks a task between arrival at the agent and result
// departure, for the TE timing component and loss recovery.
type inflightTask struct {
	task    *types.Task
	arrived time.Time
}

// Agent is the funcX endpoint agent.
type Agent struct {
	cfg Config
	log *slog.Logger

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	ln transport.Listener

	// outMu guards the upstream outbox. All upstream traffic (results,
	// heartbeats, status, running signals) is enqueued here and written
	// by a dedicated goroutine, so a saturated service link can never
	// block the goroutines that process manager frames or run the
	// watchdog — the head-of-line blocking that used to let queued
	// manager heartbeats go unread under dispatch storms and kill
	// healthy managers.
	outMu   sync.Mutex
	outbox  []transport.Message
	outKick chan struct{}

	mu        sync.Mutex
	upstream  transport.Conn
	connected bool
	managers  map[types.ManagerID]*managerState
	queue     []*types.Task
	inflight  map[types.TaskID]*inflightTask
	rng       *rand.Rand
	rrCursor  int
	// advice is the latest scaling advice from the service, with its
	// local receipt time (staleness is judged against the receiver's
	// clock so cross-machine skew cannot pin old advice).
	advice     *types.ScalingAdvice
	adviceAt   time.Time
	blockStats func() (live, pending int)
	// counters
	received  int64
	completed int64
	requeued  int64
}

// New creates an agent; Start connects and runs it.
func New(cfg Config) *Agent {
	if cfg.HeartbeatPeriod <= 0 {
		cfg.HeartbeatPeriod = time.Second
	}
	if cfg.HeartbeatMisses <= 0 {
		cfg.HeartbeatMisses = 3
	}
	if cfg.ListenNetwork == "" {
		cfg.ListenNetwork = "inproc"
	}
	if cfg.Policy == "" {
		cfg.Policy = ScheduleRandom
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.Default()
	}
	return &Agent{
		cfg:      cfg,
		log:      logger.With("endpoint_id", string(cfg.ID)),
		managers: make(map[types.ManagerID]*managerState),
		inflight: make(map[types.TaskID]*inflightTask),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		outKick:  make(chan struct{}, 1),
	}
}

// ManagerAddr returns the address managers should dial. Valid after
// Start.
func (a *Agent) ManagerAddr() (network, addr string) {
	return a.cfg.ListenNetwork, a.ln.Addr()
}

// Start opens the manager listener, connects to the forwarder,
// registers, and launches the agent loops.
func (a *Agent) Start(ctx context.Context) error {
	a.ctx, a.cancel = context.WithCancel(ctx)
	ln, err := transport.Listen(a.cfg.ListenNetwork, a.cfg.ListenAddr)
	if err != nil {
		return fmt.Errorf("endpoint %s: %w", a.cfg.ID, err)
	}
	a.ln = ln
	if err := a.connect(); err != nil {
		ln.Close()
		return err
	}
	a.wg.Add(3)
	go a.acceptLoop()
	go a.heartbeatLoop()
	go a.upstreamWriter()
	return nil
}

// connect dials the forwarder and registers (also used on reconnect).
func (a *Agent) connect() error {
	conn, err := transport.Dial(a.cfg.ServiceNetwork, a.cfg.ServiceAddr, string(a.cfg.ID))
	if err != nil {
		return fmt.Errorf("endpoint %s: dial forwarder: %w", a.cfg.ID, err)
	}
	reg := &wire.Registration{EndpointID: a.cfg.ID, Token: a.cfg.Token}
	if err := conn.Send(transport.Message{Type: transport.MsgRegister, Payload: wire.EncodeRegistration(reg)}); err != nil {
		conn.Close()
		return fmt.Errorf("endpoint %s: register: %w", a.cfg.ID, err)
	}
	// Wait for the ack so registration failures surface synchronously.
	msg, err := conn.Recv(10 * time.Second)
	if err != nil || msg.Type != transport.MsgRegisterAck {
		conn.Close()
		if err == nil {
			err = fmt.Errorf("unexpected %s", msg.Type)
		}
		return fmt.Errorf("endpoint %s: registration rejected: %w", a.cfg.ID, err)
	}
	a.mu.Lock()
	a.upstream = conn
	a.connected = true
	a.mu.Unlock()
	a.log.Info("registered with forwarder", "service_addr", a.cfg.ServiceAddr)
	a.wg.Add(1)
	go a.upstreamLoop(conn)
	return nil
}

// Stop shuts the agent down, closing manager connections.
func (a *Agent) Stop() {
	if a.cancel != nil {
		a.cancel()
	}
	if a.ln != nil {
		a.ln.Close()
	}
	a.mu.Lock()
	up := a.upstream
	conns := make([]transport.Conn, 0, len(a.managers))
	for _, m := range a.managers {
		conns = append(conns, m.conn)
	}
	a.mu.Unlock()
	if up != nil {
		up.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	a.wg.Wait()
}

// Disconnect severs the forwarder connection without stopping managers
// — the failure injected in the Figure 8 experiment.
func (a *Agent) Disconnect() {
	a.mu.Lock()
	up := a.upstream
	a.upstream = nil
	a.connected = false
	a.mu.Unlock()
	if up != nil {
		up.Close()
	}
}

// Reconnect re-dials the forwarder and repeats registration, after
// which the forwarder resumes dispatching (paper §4.3: "when the funcX
// agent recovers, it repeats the registration process").
func (a *Agent) Reconnect() error {
	a.mu.Lock()
	if a.connected {
		a.mu.Unlock()
		return nil
	}
	a.mu.Unlock()
	return a.connect()
}

// Connected reports whether the upstream link is up.
func (a *Agent) Connected() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.connected
}

// Stats returns cumulative task counters: received, completed, and
// requeued-after-manager-loss.
func (a *Agent) Stats() (received, completed, requeued int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.received, a.completed, a.requeued
}

// QueueDepth returns the internal queue length.
func (a *Agent) QueueDepth() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.queue)
}

// ManagerCount returns the number of registered (live) managers.
func (a *Agent) ManagerCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.managers)
}

// SetBlockStats installs the provider block-count source included in
// status reports (core installs it when elasticity is enabled), so the
// service's cold-start-aware strategy can see capacity already booting.
func (a *Agent) SetBlockStats(fn func() (live, pending int)) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.blockStats = fn
}

// Advice returns the latest scaling advice received from the service
// and its local receipt time (ok is false before any advice arrives).
func (a *Agent) Advice() (adv types.ScalingAdvice, receivedAt time.Time, ok bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.advice == nil {
		return types.ScalingAdvice{}, time.Time{}, false
	}
	return *a.advice, a.adviceAt, true
}

// Status snapshots the endpoint for service-side reporting.
func (a *Agent) Status() *types.EndpointStatus {
	a.mu.Lock()
	stats := a.blockStats
	a.mu.Unlock()
	live, pending := 0, 0
	if stats != nil {
		// Called outside a.mu: the source reads the provider, whose
		// lock must not nest inside the agent's.
		live, pending = stats()
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	workers, idle := 0, 0
	for _, m := range a.managers {
		if m.capacity != nil {
			workers += m.capacity.Total
			for _, f := range m.capacity.Free {
				idle += f
			}
			idle += m.capacity.Slots
		}
	}
	return &types.EndpointStatus{
		ID:               a.cfg.ID,
		Connected:        a.connected,
		OutstandingTasks: len(a.inflight),
		QueuedTasks:      len(a.queue),
		Managers:         len(a.managers),
		Workers:          workers,
		IdleWorkers:      idle,
		LiveBlocks:       live,
		PendingBlocks:    pending,
		LastHeartbeat:    time.Now(),
	}
}

// --- upstream (forwarder) side ---

func (a *Agent) upstreamLoop(conn transport.Conn) {
	defer a.wg.Done()
	for {
		msg, err := conn.Recv(0)
		if err != nil {
			a.mu.Lock()
			if a.upstream == conn {
				a.connected = false
			}
			a.mu.Unlock()
			return
		}
		// Frames the agent consumes from the service's forwarder;
		// the rest are agent-originated or handshake-only.
		//funcx:exhaustive funcx/internal/transport.MsgType ignore=MsgRegister,MsgRegisterAck,MsgResult,MsgCapacity,MsgTaskRequest,MsgSuspend,MsgStatus,MsgRunning
		switch msg.Type {
		case transport.MsgTask:
			t, err := wire.DecodeTask(msg.Payload)
			if err != nil {
				continue
			}
			a.enqueue(t)
		case transport.MsgTaskBatch:
			ts, err := wire.DecodeTasks(msg.Payload)
			if err != nil {
				continue
			}
			for _, t := range ts {
				a.enqueue(t)
			}
		case transport.MsgHeartbeat:
			// Forwarder liveness: receipt is enough; our own
			// heartbeats flow from heartbeatLoop.
		case transport.MsgAdvice:
			if a.cfg.DisableAdvice {
				continue
			}
			adv, err := wire.DecodeAdvice(msg.Payload)
			if err != nil || adv.EndpointID != a.cfg.ID {
				continue
			}
			a.mu.Lock()
			// Seq guards against reordered frames on reconnect races —
			// but only while the stored advice is itself fresh. Stale
			// advice yields to anything newer-by-arrival, so a
			// restarted service (whose Seq counter reset) is not
			// ignored until it climbs past the old counter.
			storedStale := a.advice != nil &&
				(a.advice.TTL <= 0 || time.Since(a.adviceAt) >= a.advice.TTL)
			if a.advice == nil || storedStale || adv.Seq == 0 || adv.Seq >= a.advice.Seq {
				a.advice = adv
				a.adviceAt = time.Now()
			}
			a.mu.Unlock()
		case transport.MsgShutdown:
			go a.Stop()
			return
		}
	}
}

// enqueue accepts a task from upstream into the internal queue.
func (a *Agent) enqueue(t *types.Task) {
	if t.Attempt <= 0 {
		t.Attempt = 1 // first execution attempt
	}
	a.mu.Lock()
	a.received++
	a.queue = append(a.queue, t)
	a.inflight[t.ID] = &inflightTask{task: t, arrived: time.Now()}
	a.mu.Unlock()
	a.log.Debug("task received", "task_id", string(t.ID), "function_id", string(t.FunctionID), "attempt", t.Attempt, "trace_id", traceIDOf(t))
	a.schedule()
}

// sendUpstream forwards a result to the forwarder if connected.
func (a *Agent) sendUpstream(r *types.Result) {
	a.enqueueUpstream(transport.Message{Type: transport.MsgResult, Payload: wire.EncodeResult(r)})
}

// outboxCap bounds the upstream outbox. A wedged-but-open service
// link (peer stopped reading, no connection error) would otherwise
// grow the queue forever: heartbeats and status reports are refreshed
// every tick anyway, and results dropped here are redelivered once
// the dead link finally breaks and the forwarder reclaims the leases.
const outboxCap = 16384

// enqueueUpstream hands a message to the upstream writer. It never
// blocks, so callers holding a.mu (the watchdog) or processing manager
// frames are isolated from upstream backpressure; memory is bounded
// by outboxCap with drop-oldest overflow.
func (a *Agent) enqueueUpstream(m transport.Message) {
	a.outMu.Lock()
	if len(a.outbox) >= outboxCap {
		// Drop the oldest half rather than the new message: the
		// freshest heartbeat/status/result is always the most useful.
		a.outbox = append(a.outbox[:0:0], a.outbox[len(a.outbox)/2:]...)
	}
	a.outbox = append(a.outbox, m)
	a.outMu.Unlock()
	select {
	case a.outKick <- struct{}{}:
	default:
	}
}

// upstreamWriter drains the outbox onto the live upstream connection
// in FIFO order. Messages drained while no agent link is up are
// dropped, matching the old synchronous behavior: results lost this
// way are covered by the forwarder's redelivery after reconnect.
func (a *Agent) upstreamWriter() {
	defer a.wg.Done()
	for {
		select {
		case <-a.outKick:
		case <-a.ctx.Done():
			return
		}
		for {
			a.outMu.Lock()
			msgs := a.outbox
			a.outbox = nil
			a.outMu.Unlock()
			if len(msgs) == 0 {
				break
			}
			a.mu.Lock()
			conn := a.upstream
			a.mu.Unlock()
			if conn == nil {
				continue // drop the batch; redelivery covers results
			}
			for _, m := range msgs {
				conn.Send(m) //nolint:errcheck
			}
		}
	}
}

// heartbeatLoop sends agent heartbeats + status upstream and runs the
// manager watchdog.
func (a *Agent) heartbeatLoop() {
	defer a.wg.Done()
	ticker := time.NewTicker(a.cfg.HeartbeatPeriod)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			a.mu.Lock()
			connected := a.upstream != nil
			a.mu.Unlock()
			if connected {
				// Enqueued, not sent inline: a saturated upstream link
				// must delay the beats, not the watchdog below.
				a.enqueueUpstream(transport.Message{Type: transport.MsgHeartbeat, Payload: []byte(a.cfg.ID)})
				a.enqueueUpstream(transport.Message{Type: transport.MsgStatus, Payload: wire.EncodeStatus(a.Status())})
			}
			a.watchdog()
		case <-a.ctx.Done():
			return
		}
	}
}

// watchdog detects managers whose heartbeats stopped and re-queues
// their outstanding tasks for re-execution (§4.3).
func (a *Agent) watchdog() {
	cutoff := time.Now().Add(-time.Duration(a.cfg.HeartbeatMisses) * a.cfg.HeartbeatPeriod)
	var lost []*managerState
	a.mu.Lock()
	for id, m := range a.managers {
		if m.lastSeen.Before(cutoff) {
			lost = append(lost, m)
			delete(a.managers, id)
		}
	}
	for _, m := range lost {
		a.log.Warn("manager lost", "manager_id", string(m.id), "outstanding", len(m.outstanding))
		for _, t := range m.outstanding {
			if t.AtMostOnce || (a.cfg.MaxAttempts > 0 && t.Attempt >= a.cfg.MaxAttempts) {
				// Permanent failure: at-most-once tasks must never be
				// re-executed after their manager is presumed dead (it
				// may still be running them), and retryable tasks give
				// up once the attempt budget is spent. The Lost result
				// lands the task as TaskLost at the service.
				reason := fmt.Sprintf(`{"message":"task lost: manager %s failed after %d attempts"}`, m.id, t.Attempt)
				if t.AtMostOnce {
					reason = fmt.Sprintf(`{"message":"task lost: manager %s failed and the task is at-most-once"}`, m.id)
				}
				a.completed++
				delete(a.inflight, t.ID)
				// enqueueUpstream never blocks, so calling under a.mu
				// is safe.
				a.enqueueUpstream(transport.Message{Type: transport.MsgResult, Payload: wire.EncodeResult(&types.Result{
					TaskID:    t.ID,
					Err:       reason,
					Lost:      true,
					Completed: time.Now(),
				})})
				a.log.Warn("task lost", "task_id", string(t.ID), "manager_id", string(m.id), "attempt", t.Attempt, "at_most_once", t.AtMostOnce, "trace_id", traceIDOf(t))
				continue
			}
			t.Attempt++
			a.requeued++
			a.log.Debug("task requeued after manager loss", "task_id", string(t.ID), "manager_id", string(m.id), "attempt", t.Attempt, "trace_id", traceIDOf(t))
			// Head-of-queue so recovered tasks run first.
			a.queue = append([]*types.Task{t}, a.queue...)
		}
	}
	a.mu.Unlock()
	for _, m := range lost {
		m.conn.Close()
	}
	if len(lost) > 0 {
		a.schedule()
	}
}

// --- manager side ---

func (a *Agent) acceptLoop() {
	defer a.wg.Done()
	for {
		conn, err := a.ln.Accept()
		if err != nil {
			return
		}
		a.wg.Add(1)
		go a.manageConn(conn)
	}
}

// manageConn handles one manager connection for its lifetime.
func (a *Agent) manageConn(conn transport.Conn) {
	defer a.wg.Done()
	// First message must be a registration.
	msg, err := conn.Recv(10 * time.Second)
	if err != nil || msg.Type != transport.MsgRegister {
		conn.Close()
		return
	}
	reg, err := wire.DecodeRegistration(msg.Payload)
	if err != nil || reg.ManagerID == "" {
		conn.Close()
		return
	}
	st := &managerState{
		id:          reg.ManagerID,
		conn:        conn,
		lastSeen:    time.Now(),
		outstanding: make(map[types.TaskID]*types.Task),
	}
	a.mu.Lock()
	a.managers[reg.ManagerID] = st
	a.mu.Unlock()
	a.log.Info("manager registered", "manager_id", string(reg.ManagerID))

	for {
		msg, err := conn.Recv(0)
		if err != nil {
			// Connection gone; the watchdog reclaims outstanding
			// tasks after missed heartbeats (do not reclaim
			// instantly: transient transport hiccups and manager
			// restarts share this path).
			return
		}
		a.mu.Lock()
		st.lastSeen = time.Now()
		a.mu.Unlock()
		// Frames the agent relays or absorbs from a manager; the rest
		// are manager-bound or handshake-only.
		//funcx:exhaustive funcx/internal/transport.MsgType ignore=MsgRegister,MsgRegisterAck,MsgTask,MsgTaskBatch,MsgTaskRequest,MsgSuspend,MsgShutdown,MsgStatus,MsgAdvice
		switch msg.Type {
		case transport.MsgHeartbeat:
			// lastSeen already refreshed.
		case transport.MsgCapacity:
			cap, err := wire.DecodeCapacity(msg.Payload)
			if err != nil {
				continue
			}
			a.mu.Lock()
			st.capacity = cap
			st.budget = a.capacityBudget(cap)
			st.awaitingAdvert = false
			a.mu.Unlock()
			a.schedule()
		case transport.MsgRunning:
			// Worker began executing: relay toward the service so it
			// can emit TaskRunning and extend the dispatch lease.
			a.enqueueUpstream(msg)
		case transport.MsgResult:
			res, err := wire.DecodeResult(msg.Payload)
			if err != nil {
				continue
			}
			a.finish(st, res)
		}
	}
}

// capacityBudget converts an advertisement into a dispatch budget.
func (a *Agent) capacityBudget(c *types.Capacity) int {
	n := c.Slots + c.Prefetch
	for _, f := range c.Free {
		n += f
	}
	return n
}

// finish processes a result from a manager: stamps TE timing, clears
// bookkeeping, forwards upstream.
func (a *Agent) finish(st *managerState, res *types.Result) {
	var traceID string
	a.mu.Lock()
	delete(st.outstanding, res.TaskID)
	if fl, ok := a.inflight[res.TaskID]; ok {
		traceID = traceIDOf(fl.task)
		delete(a.inflight, res.TaskID)
		// TE: time inside the endpoint excluding execution (§5.1).
		te := time.Since(fl.arrived) - res.Timing.TW
		if te < 0 {
			te = 0
		}
		res.Timing.TE = te
		if res.Trace != nil {
			// Agent-queue trace delta: endpoint time outside the
			// manager and worker, measured on this machine's clock.
			aq := te - res.Trace.ManagerQueue
			if aq < 0 {
				aq = 0
			}
			res.Trace.AgentQueue = aq
		}
	}
	a.completed++
	a.mu.Unlock()
	a.log.Debug("task completed", "task_id", string(res.TaskID), "manager_id", string(st.id), "failed", res.Err != "", "trace_id", traceID)
	a.sendUpstream(res)
}

// schedule drains the internal queue onto managers using the greedy
// randomized algorithm of §4.5: prefer managers with a matching
// deployed container, then any manager with free capacity, choosing
// randomly among candidates.
func (a *Agent) schedule() {
	type dispatch struct {
		st    *managerState
		tasks []*types.Task
	}
	var plan []dispatch

	a.mu.Lock()
	byManager := make(map[types.ManagerID]*dispatch)
	var order []types.ManagerID
	var remaining []*types.Task
	for _, t := range a.queue {
		st := a.pickManagerLocked(t)
		if st == nil {
			remaining = append(remaining, t)
			continue
		}
		st.budget--
		if !a.cfg.BatchDispatch {
			st.awaitingAdvert = true
		}
		st.outstanding[t.ID] = t
		d := byManager[st.id]
		if d == nil {
			d = &dispatch{st: st}
			byManager[st.id] = d
			order = append(order, st.id)
		}
		d.tasks = append(d.tasks, t)
	}
	a.queue = remaining
	for _, id := range order {
		plan = append(plan, *byManager[id])
	}
	a.mu.Unlock()

	for _, d := range plan {
		var err error
		if len(d.tasks) == 1 {
			err = d.st.conn.Send(transport.Message{Type: transport.MsgTask, Payload: wire.EncodeTask(d.tasks[0])})
		} else {
			err = d.st.conn.Send(transport.Message{Type: transport.MsgTaskBatch, Payload: wire.EncodeTasks(d.tasks)})
		}
		if err != nil {
			// Manager connection failed mid-dispatch: requeue; the
			// watchdog will clean up the manager itself.
			a.mu.Lock()
			for _, t := range d.tasks {
				delete(d.st.outstanding, t.ID)
				a.queue = append(a.queue, t)
			}
			a.mu.Unlock()
		}
	}
}

// pickManagerLocked selects a manager for one task, or nil when none
// has capacity. Caller holds a.mu.
func (a *Agent) pickManagerLocked(t *types.Task) *managerState {
	key := t.Container.Key()
	var warm, cold []*managerState // warm: matching container deployed
	for _, m := range a.managers {
		if m.suspended || m.capacity == nil || m.budget <= 0 || m.awaitingAdvert {
			continue
		}
		if m.capacity.Free[key] > 0 {
			warm = append(warm, m)
		} else {
			cold = append(cold, m)
		}
	}
	candidates := warm
	if len(candidates) == 0 {
		candidates = cold
	}
	if len(candidates) == 0 {
		return nil
	}
	switch a.cfg.Policy {
	case ScheduleFirstFit:
		return candidates[0]
	case ScheduleRoundRobin:
		a.rrCursor++
		return candidates[a.rrCursor%len(candidates)]
	default: // ScheduleRandom
		return candidates[a.rng.Intn(len(candidates))]
	}
}

// SuspendManager stops scheduling new tasks to a manager (used before
// scale-in; paper §4.3: the agent can "suspend managers to prevent
// further tasks being scheduled to them").
func (a *Agent) SuspendManager(id types.ManagerID) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	m, ok := a.managers[id]
	if !ok {
		return errors.New("endpoint: unknown manager")
	}
	m.suspended = true
	return nil
}

// ManagerIDs lists the registered managers.
func (a *Agent) ManagerIDs() []types.ManagerID {
	a.mu.Lock()
	defer a.mu.Unlock()
	ids := make([]types.ManagerID, 0, len(a.managers))
	for id := range a.managers {
		ids = append(ids, id)
	}
	return ids
}

// OutstandingAt returns how many tasks are outstanding at one manager.
func (a *Agent) OutstandingAt(id types.ManagerID) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	m, ok := a.managers[id]
	if !ok {
		return 0
	}
	return len(m.outstanding)
}
