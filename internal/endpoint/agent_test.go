package endpoint

import (
	"context"
	"testing"
	"time"

	"funcx/internal/container"
	"funcx/internal/fx"
	"funcx/internal/manager"
	"funcx/internal/serial"
	"funcx/internal/transport"
	"funcx/internal/types"
	"funcx/internal/wire"
)

// fakeForwarder accepts agent registrations and relays messages.
type fakeForwarder struct {
	ln   transport.Listener
	conn transport.Conn
	msgs chan transport.Message
	// accepted signals each successful registration.
	accepted chan struct{}
}

func newFakeForwarder(t *testing.T) *fakeForwarder {
	t.Helper()
	ln, err := transport.Listen("inproc", "")
	if err != nil {
		t.Fatal(err)
	}
	ff := &fakeForwarder{ln: ln, msgs: make(chan transport.Message, 1024), accepted: make(chan struct{}, 8)}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn transport.Conn) {
				msg, err := conn.Recv(2 * time.Second)
				if err != nil || msg.Type != transport.MsgRegister {
					conn.Close()
					return
				}
				if err := conn.Send(transport.Message{Type: transport.MsgRegisterAck}); err != nil {
					return
				}
				ff.conn = conn
				ff.accepted <- struct{}{}
				for {
					m, err := conn.Recv(0)
					if err != nil {
						return
					}
					ff.msgs <- m
				}
			}(conn)
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ff
}

func (ff *fakeForwarder) waitResult(t *testing.T, timeout time.Duration) *types.Result {
	t.Helper()
	deadline := time.After(timeout)
	for {
		select {
		case msg := <-ff.msgs:
			if msg.Type != transport.MsgResult {
				continue
			}
			res, err := wire.DecodeResult(msg.Payload)
			if err != nil {
				t.Fatal(err)
			}
			return res
		case <-deadline:
			t.Fatal("no result within timeout")
		}
	}
}

// newAgentWithManagers boots an agent plus n real managers.
func newAgentWithManagers(t *testing.T, ff *fakeForwarder, cfg Config, n, workers int) (*Agent, []*manager.Manager, *fx.Runtime) {
	t.Helper()
	cfg.ID = "ep-1"
	cfg.ServiceNetwork = "inproc"
	cfg.ServiceAddr = ff.ln.Addr()
	if cfg.HeartbeatPeriod == 0 {
		cfg.HeartbeatPeriod = 40 * time.Millisecond
	}
	a := New(cfg)
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Stop)
	<-ff.accepted

	rt := fx.NewRuntime()
	rt.SleepScale = 0.001
	rt.RegisterBuiltins()
	network, addr := a.ManagerAddr()
	var mgrs []*manager.Manager
	for i := 0; i < n; i++ {
		m := manager.New(manager.Config{
			AgentNetwork: network, AgentAddr: addr,
			MaxWorkers: workers, HeartbeatPeriod: 40 * time.Millisecond,
			Runtime:    rt,
			Containers: container.NewRuntime(container.Config{System: "ec2", TimeScale: 0}),
		})
		if err := m.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(m.Stop)
		mgrs = append(mgrs, m)
	}
	// Wait for manager registration.
	deadline := time.Now().Add(2 * time.Second)
	for a.ManagerCount() < n && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if a.ManagerCount() < n {
		t.Fatalf("only %d of %d managers registered", a.ManagerCount(), n)
	}
	return a, mgrs, rt
}

func sendTask(t *testing.T, ff *fakeForwarder, id types.TaskID, bodyHash string, payload []byte) {
	t.Helper()
	task := &types.Task{ID: id, BodyHash: bodyHash, Payload: payload}
	if err := ff.conn.Send(transport.Message{Type: transport.MsgTask, Payload: wire.EncodeTask(task)}); err != nil {
		t.Fatal(err)
	}
}

func TestAgentEndToEnd(t *testing.T) {
	ff := newFakeForwarder(t)
	a, _, _ := newAgentWithManagers(t, ff, Config{BatchDispatch: true}, 2, 2)
	payload, _ := serial.Serialize("hi")
	sendTask(t, ff, "t1", fx.HashBody(fx.BodyEcho), payload)
	res := ff.waitResult(t, 5*time.Second)
	if res.TaskID != "t1" || res.Failed() {
		t.Fatalf("result = %+v", res)
	}
	if res.Timing.TE < 0 {
		t.Fatalf("TE = %v", res.Timing.TE)
	}
	rcv, cmp, _ := a.Stats()
	if rcv != 1 || cmp != 1 {
		t.Fatalf("stats = %d received, %d completed", rcv, cmp)
	}
}

func TestAgentSpreadsLoadAcrossManagers(t *testing.T) {
	ff := newFakeForwarder(t)
	_, mgrs, _ := newAgentWithManagers(t, ff, Config{BatchDispatch: true, Seed: 3}, 3, 2)
	payload, _ := serial.Serialize("x")
	const n = 60
	for i := 0; i < n; i++ {
		sendTask(t, ff, types.TaskID(string(rune('A'+i%26))+string(rune('a'+i/26))), fx.HashBody(fx.BodyEcho), payload)
	}
	seen := 0
	deadline := time.After(10 * time.Second)
	for seen < n {
		select {
		case msg := <-ff.msgs:
			if msg.Type == transport.MsgResult {
				seen++
			}
		case <-deadline:
			t.Fatalf("only %d of %d results", seen, n)
		}
	}
	// Randomized scheduling should have touched every manager.
	for i, m := range mgrs {
		if m.Completed() == 0 {
			t.Fatalf("manager %d received no work (randomized spread)", i)
		}
	}
}

func TestWatchdogReexecutesLostTasks(t *testing.T) {
	ff := newFakeForwarder(t)
	a, mgrs, _ := newAgentWithManagers(t, ff,
		Config{BatchDispatch: true, HeartbeatPeriod: 40 * time.Millisecond, HeartbeatMisses: 2}, 2, 2)

	// A long task lands somewhere; kill both managers' ability to
	// finish by killing the one holding it. Simpler: send tasks that
	// sleep long, kill manager 0, and expect re-execution after the
	// replacement picks them up.
	payload := fx.SleepArgs(200) // 200ms scaled (SleepScale 0.001 in manager runtime)
	for i := 0; i < 4; i++ {
		sendTask(t, ff, types.TaskID([]byte{byte('a' + i)}), fx.HashBody(fx.BodySleep), payload)
	}
	time.Sleep(30 * time.Millisecond)
	mgrs[0].Kill()

	// All four tasks must still complete (via manager 1 after the
	// watchdog requeues).
	done := map[types.TaskID]bool{}
	deadline := time.After(15 * time.Second)
	for len(done) < 4 {
		select {
		case msg := <-ff.msgs:
			if msg.Type != transport.MsgResult {
				continue
			}
			res, _ := wire.DecodeResult(msg.Payload)
			if !res.Failed() {
				done[res.TaskID] = true
			}
		case <-deadline:
			t.Fatalf("only %d of 4 tasks completed after manager kill", len(done))
		}
	}
	_, _, requeued := a.Stats()
	if requeued == 0 {
		t.Log("note: kill raced completion; no tasks needed re-execution")
	}
	deadline2 := time.Now().Add(3 * time.Second)
	for a.ManagerCount() != 1 && time.Now().Before(deadline2) {
		time.Sleep(20 * time.Millisecond)
	}
	if a.ManagerCount() != 1 {
		t.Fatalf("dead manager still registered: %d", a.ManagerCount())
	}
}

func TestDisconnectReconnect(t *testing.T) {
	ff := newFakeForwarder(t)
	a, _, _ := newAgentWithManagers(t, ff, Config{BatchDispatch: true}, 1, 2)
	if !a.Connected() {
		t.Fatal("agent not connected after start")
	}
	a.Disconnect()
	if a.Connected() {
		t.Fatal("agent connected after Disconnect")
	}
	if err := a.Reconnect(); err != nil {
		t.Fatalf("Reconnect: %v", err)
	}
	<-ff.accepted
	if !a.Connected() {
		t.Fatal("agent not connected after Reconnect")
	}
	// Work still flows.
	payload, _ := serial.Serialize("back")
	sendTask(t, ff, "t9", fx.HashBody(fx.BodyEcho), payload)
	res := ff.waitResult(t, 5*time.Second)
	if res.TaskID != "t9" || res.Failed() {
		t.Fatalf("post-reconnect result = %+v", res)
	}
}

func TestStatusReporting(t *testing.T) {
	ff := newFakeForwarder(t)
	a, _, _ := newAgentWithManagers(t, ff, Config{}, 2, 3)
	st := a.Status()
	if st.ID != "ep-1" || !st.Connected || st.Managers != 2 {
		t.Fatalf("status = %+v", st)
	}
	// Worker counts arrive with each manager's first capacity
	// advertisement; poll until both have reported.
	pollDeadline := time.Now().Add(3 * time.Second)
	for a.Status().Workers != 6 && time.Now().Before(pollDeadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if st = a.Status(); st.Workers != 6 {
		t.Fatalf("workers = %d, want 6", st.Workers)
	}
	// Status messages reach the forwarder via heartbeats.
	deadline := time.After(2 * time.Second)
	for {
		select {
		case msg := <-ff.msgs:
			if msg.Type == transport.MsgStatus {
				got, err := wire.DecodeStatus(msg.Payload)
				if err != nil || got.Managers != 2 {
					t.Fatalf("status msg = %+v, %v", got, err)
				}
				return
			}
		case <-deadline:
			t.Fatal("no status report")
		}
	}
}

func TestTaskBatchFromForwarder(t *testing.T) {
	ff := newFakeForwarder(t)
	newAgentWithManagers(t, ff, Config{BatchDispatch: true}, 1, 4)
	payload, _ := serial.Serialize("x")
	var tasks []*types.Task
	for i := 0; i < 6; i++ {
		tasks = append(tasks, &types.Task{
			ID: types.TaskID([]byte{byte('0' + i)}), BodyHash: fx.HashBody(fx.BodyEcho), Payload: payload,
		})
	}
	ff.conn.Send(transport.Message{Type: transport.MsgTaskBatch, Payload: wire.EncodeTasks(tasks)}) //nolint:errcheck
	seen := 0
	deadline := time.After(10 * time.Second)
	for seen < 6 {
		select {
		case msg := <-ff.msgs:
			if msg.Type == transport.MsgResult {
				seen++
			}
		case <-deadline:
			t.Fatalf("only %d of 6 batch tasks completed", seen)
		}
	}
}

func TestSuspendManagerStopsScheduling(t *testing.T) {
	ff := newFakeForwarder(t)
	a, mgrs, _ := newAgentWithManagers(t, ff, Config{BatchDispatch: true}, 2, 2)
	ids := a.ManagerIDs()
	if len(ids) != 2 {
		t.Fatalf("ManagerIDs = %v", ids)
	}
	// Suspend the first manager; all work should land on the other.
	if err := a.SuspendManager(ids[0]); err != nil {
		t.Fatal(err)
	}
	payload, _ := serial.Serialize("x")
	for i := 0; i < 10; i++ {
		sendTask(t, ff, types.TaskID([]byte{byte('a' + i)}), fx.HashBody(fx.BodyEcho), payload)
	}
	seen := 0
	deadline := time.After(10 * time.Second)
	for seen < 10 {
		select {
		case msg := <-ff.msgs:
			if msg.Type == transport.MsgResult {
				seen++
			}
		case <-deadline:
			t.Fatalf("only %d of 10 completed with one manager suspended", seen)
		}
	}
	var suspended *manager.Manager
	for _, m := range mgrs {
		if m.ID() == ids[0] {
			suspended = m
		}
	}
	if suspended.Completed() != 0 {
		t.Fatalf("suspended manager executed %d tasks", suspended.Completed())
	}
	if err := a.SuspendManager("ghost"); err == nil {
		t.Fatal("suspending unknown manager succeeded")
	}
}

func TestSchedulingPoliciesComplete(t *testing.T) {
	for _, policy := range []SchedulingPolicy{ScheduleRandom, ScheduleRoundRobin, ScheduleFirstFit} {
		t.Run(string(policy), func(t *testing.T) {
			ff := newFakeForwarder(t)
			newAgentWithManagers(t, ff, Config{BatchDispatch: true, Policy: policy}, 2, 2)
			payload, _ := serial.Serialize("x")
			for i := 0; i < 8; i++ {
				sendTask(t, ff, types.TaskID([]byte{byte('a' + i)}), fx.HashBody(fx.BodyEcho), payload)
			}
			seen := 0
			deadline := time.After(10 * time.Second)
			for seen < 8 {
				select {
				case msg := <-ff.msgs:
					if msg.Type == transport.MsgResult {
						seen++
					}
				case <-deadline:
					t.Fatalf("policy %s: only %d of 8 completed", policy, seen)
				}
			}
		})
	}
}

func TestMaxAttemptsGivesUp(t *testing.T) {
	ff := newFakeForwarder(t)
	a, mgrs, _ := newAgentWithManagers(t, ff,
		Config{BatchDispatch: true, MaxAttempts: 1, HeartbeatPeriod: 40 * time.Millisecond, HeartbeatMisses: 2}, 1, 1)
	// One long task; kill its manager; with MaxAttempts=1 the agent
	// must give up and report a failure upstream.
	sendTask(t, ff, "doomed", fx.HashBody(fx.BodySleep), fx.SleepArgs(5000))
	time.Sleep(60 * time.Millisecond)
	mgrs[0].Kill()
	res := ff.waitResult(t, 10*time.Second)
	if res.TaskID != "doomed" || !res.Failed() {
		t.Fatalf("result = %+v, want permanent failure", res)
	}
	_, cmp, _ := a.Stats()
	if cmp != 1 {
		t.Fatalf("completed = %d", cmp)
	}
}
