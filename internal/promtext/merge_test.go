package promtext

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, doc string) []Family {
	t.Helper()
	fams, err := Parse(doc)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, doc)
	}
	return fams
}

func TestParseExemplar(t *testing.T) {
	doc := "# TYPE c_total counter\n" +
		`c_total 5 # {trace_id="abc",task_id="t-1"} 3 1700000000.5` + "\n" +
		"# TYPE h histogram\n" +
		`h_bucket{le="1"} 2 # {task_id="t-2"} 0.7` + "\n" +
		`h_bucket{le="+Inf"} 2` + "\n" +
		"h_sum 1.2\nh_count 2\n"
	fams := mustParse(t, doc)
	c := Get(fams, "c_total")
	if c == nil || c.Samples[0].Exemplar == nil {
		t.Fatal("counter exemplar lost in parse")
	}
	ex := c.Samples[0].Exemplar
	if ex.Labels["trace_id"] != "abc" || ex.Labels["task_id"] != "t-1" {
		t.Fatalf("exemplar labels %v", ex.Labels)
	}
	if ex.Value != 3 || !ex.HasTimestamp || ex.Timestamp != 1700000000.5 {
		t.Fatalf("exemplar value/timestamp: %+v", ex)
	}
	h := Get(fams, "h")
	if h.Samples[0].Exemplar == nil || h.Samples[0].Exemplar.Value != 0.7 {
		t.Fatalf("bucket exemplar: %+v", h.Samples[0].Exemplar)
	}
	if h.Samples[0].Exemplar.HasTimestamp {
		t.Fatal("phantom timestamp on bucket exemplar")
	}
}

func TestParseRejectsBadExemplars(t *testing.T) {
	cases := map[string]string{
		"exemplar on gauge": "# TYPE g gauge\n" +
			`g 1 # {task_id="t"} 1` + "\n",
		"exemplar on histogram sum": "# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 1` + "\n" +
			`h_sum 1 # {task_id="t"} 1` + "\nh_count 1\n",
		"exemplar value above bucket bound": "# TYPE h histogram\n" +
			`h_bucket{le="1"} 1 # {task_id="t"} 5` + "\n" +
			`h_bucket{le="+Inf"} 1` + "\nh_sum 1\nh_count 1\n",
		"exemplar value below bucket's lower bound": "# TYPE h histogram\n" +
			`h_bucket{le="1"} 1` + "\n" +
			`h_bucket{le="2"} 2 # {task_id="t"} 0.5` + "\n" +
			`h_bucket{le="+Inf"} 2` + "\nh_sum 2\nh_count 2\n",
		"exemplar without braces": "# TYPE c_total counter\n" +
			"c_total 1 # 2\n",
		"exemplar without value": "# TYPE c_total counter\n" +
			`c_total 1 # {task_id="t"}` + "\n",
		"exemplar bad timestamp": "# TYPE c_total counter\n" +
			`c_total 1 # {task_id="t"} 1 nope` + "\n",
	}
	for name, doc := range cases {
		if _, err := Parse(doc); err == nil {
			t.Errorf("%s: parse accepted invalid exemplar", name)
		}
	}
}

func TestMergeSumsCountersAndHistograms(t *testing.T) {
	shard := func(id, submitted, b1, bInf, sum, count string) string {
		return "# TYPE funcx_tasks_submitted_total counter\n" +
			`funcx_tasks_submitted_total{shard="` + id + `"} ` + submitted + "\n" +
			"# TYPE funcx_task_stage_seconds histogram\n" +
			`funcx_task_stage_seconds_bucket{shard="` + id + `",stage="submit",le="1"} ` + b1 + "\n" +
			`funcx_task_stage_seconds_bucket{shard="` + id + `",stage="submit",le="+Inf"} ` + bInf + "\n" +
			`funcx_task_stage_seconds_sum{shard="` + id + `",stage="submit"} ` + sum + "\n" +
			`funcx_task_stage_seconds_count{shard="` + id + `",stage="submit"} ` + count + "\n"
	}
	merged, err := Merge([][]Family{
		mustParse(t, shard("s-0", "10", "3", "4", "2.5", "4")),
		mustParse(t, shard("s-1", "32", "1", "1", "0.25", "1")),
	}, "shard")
	if err != nil {
		t.Fatal(err)
	}
	c := Get(merged, "funcx_tasks_submitted_total")
	if len(c.Samples) != 1 || c.Samples[0].Value != 42 {
		t.Fatalf("counter not summed: %+v", c.Samples)
	}
	if _, has := c.Samples[0].Labels["shard"]; has {
		t.Fatal("shard label survived the merge of a counter")
	}
	h := Get(merged, "funcx_task_stage_seconds")
	want := map[string]float64{"1": 4, "+Inf": 5}
	for _, s := range h.Samples {
		if s.Name == "funcx_task_stage_seconds_bucket" {
			if s.Value != want[s.Labels["le"]] {
				t.Errorf("bucket le=%s merged to %g, want %g", s.Labels["le"], s.Value, want[s.Labels["le"]])
			}
		}
		if s.Name == "funcx_task_stage_seconds_count" && s.Value != 5 {
			t.Errorf("count merged to %g, want 5", s.Value)
		}
		if s.Name == "funcx_task_stage_seconds_sum" && s.Value != 2.75 {
			t.Errorf("sum merged to %g, want 2.75", s.Value)
		}
	}
}

func TestMergeKeepsGaugesPerShard(t *testing.T) {
	doc := func(id string, v string) string {
		return "# TYPE funcx_endpoint_queued_tasks gauge\n" +
			`funcx_endpoint_queued_tasks{shard="` + id + `"} ` + v + "\n"
	}
	merged, err := Merge([][]Family{
		mustParse(t, doc("s-0", "7")),
		mustParse(t, doc("s-1", "9")),
	}, "shard")
	if err != nil {
		t.Fatal(err)
	}
	g := Get(merged, "funcx_endpoint_queued_tasks")
	if len(g.Samples) != 2 {
		t.Fatalf("gauge series collapsed: %+v", g.Samples)
	}
	seen := map[string]float64{}
	for _, s := range g.Samples {
		seen[s.Labels["shard"]] = s.Value
	}
	if seen["s-0"] != 7 || seen["s-1"] != 9 {
		t.Fatalf("per-shard gauge values %v", seen)
	}
}

func TestMergeTypeConflict(t *testing.T) {
	a := mustParse(t, "# TYPE m_total counter\nm_total 1\n")
	b := []Family{{Name: "m_total", Type: "gauge", Samples: []Sample{{Name: "m_total", Value: 1}}}}
	if _, err := Merge([][]Family{a, b}, "shard"); err == nil {
		t.Fatal("type conflict accepted")
	}
}

func TestMergePreservesFirstExemplar(t *testing.T) {
	doc := func(id, trace string) string {
		return "# TYPE h histogram\n" +
			`h_bucket{shard="` + id + `",le="1"} 1 # {trace_id="` + trace + `"} 0.5` + "\n" +
			`h_bucket{shard="` + id + `",le="+Inf"} 1` + "\n" +
			`h_sum{shard="` + id + `"} 0.5` + "\n" +
			`h_count{shard="` + id + `"} 1` + "\n"
	}
	merged, err := Merge([][]Family{
		mustParse(t, doc("s-0", "first")),
		mustParse(t, doc("s-1", "second")),
	}, "shard")
	if err != nil {
		t.Fatal(err)
	}
	h := Get(merged, "h")
	var got *Exemplar
	for _, s := range h.Samples {
		if s.Name == "h_bucket" && s.Labels["le"] == "1" {
			got = s.Exemplar
		}
	}
	if got == nil || got.Labels["trace_id"] != "first" {
		t.Fatalf("merged exemplar %+v, want the first shard's", got)
	}
}

func TestRenderRoundTrips(t *testing.T) {
	doc := "# HELP c_total Total things.\n# TYPE c_total counter\n" +
		`c_total{q="a\"b\\c\nd"} 5 # {task_id="t-1",trace_id="abc"} 3` + "\n" +
		"# TYPE g gauge\ng 7\n" +
		"# TYPE h histogram\n" +
		`h_bucket{le="1"} 2 # {task_id="t-2"} 0.25 1700000000` + "\n" +
		`h_bucket{le="+Inf"} 3` + "\n" +
		"h_sum 4.5\nh_count 3\n"
	fams := mustParse(t, doc)
	rendered := Render(fams)
	again, err := Parse(rendered)
	if err != nil {
		t.Fatalf("Render output does not re-parse: %v\n%s", err, rendered)
	}
	if len(again) != len(fams) {
		t.Fatalf("round trip changed family count %d → %d", len(fams), len(again))
	}
	if Render(again) != rendered {
		t.Fatalf("Render not a fixpoint:\n%s\nvs\n%s", rendered, Render(again))
	}
	c := Get(again, "c_total")
	if c.Samples[0].Labels["q"] != "a\"b\\c\nd" {
		t.Fatalf("escaping mangled: %q", c.Samples[0].Labels["q"])
	}
	h := Get(again, "h")
	if h.Samples[0].Exemplar == nil || !h.Samples[0].Exemplar.HasTimestamp {
		t.Fatal("exemplar timestamp lost in round trip")
	}
	if !strings.Contains(rendered, "# HELP c_total Total things.") {
		t.Fatal("HELP line lost")
	}
}
