// Package promtext is a strict parser for the Prometheus text
// exposition format (version 0.0.4) — the format /v1/metrics and
// /debug/runtime emit. It exists so tests and the CI smoke check can
// fail on malformed output (broken escaping, interleaved families,
// non-cumulative histogram buckets) instead of a scraper discovering
// it in production.
//
// Parse is deliberately stricter than real Prometheus servers:
//
//   - every sample must belong to a family declared with # TYPE, and
//     families may not be re-opened once another family has started;
//   - metric and label names must match the spec's character sets;
//   - duplicate series (same name and label set) are errors;
//   - histogram families must emit cumulative, non-decreasing buckets
//     in increasing le order ending in a +Inf bucket whose value
//     equals _count, plus exactly one _sum and _count per series set.
package promtext

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one series line: a name, its label pairs, and the value.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
	// Exemplar is the sample's OpenMetrics exemplar, if one followed
	// the value (` # {labels} value [timestamp]`). Only counter and
	// histogram bucket samples may carry one.
	Exemplar *Exemplar
}

// Exemplar is one OpenMetrics exemplar: a labeled reference observation
// attached to a counter or histogram bucket sample — here, the task and
// trace ids that landed in a latency bucket.
type Exemplar struct {
	Labels map[string]string
	Value  float64
	// HasTimestamp reports whether the optional exemplar timestamp
	// (seconds, possibly fractional) was present.
	HasTimestamp bool
	Timestamp    float64
}

// Family is one metric family: the header and its samples in order.
type Family struct {
	Name    string
	Type    string // counter | gauge | histogram | summary | untyped
	Help    string
	Samples []Sample
}

// Get returns the family with the given name, or nil.
func Get(families []Family, name string) *Family {
	for i := range families {
		if families[i].Name == name {
			return &families[i]
		}
	}
	return nil
}

// Sample returns the first sample whose labels include every pair in
// match (extra labels, like the shard label, are ignored), or nil.
func (f *Family) Sample(match map[string]string) *Sample {
	for i := range f.Samples {
		ok := true
		for k, v := range match {
			if f.Samples[i].Labels[k] != v {
				ok = false
				break
			}
		}
		if ok {
			return &f.Samples[i]
		}
	}
	return nil
}

// Parse parses and validates one exposition document.
func Parse(text string) ([]Family, error) {
	p := parser{byName: make(map[string]*Family), series: make(map[string]bool)}
	for i, line := range strings.Split(text, "\n") {
		if err := p.line(line); err != nil {
			return nil, fmt.Errorf("line %d: %w (%q)", i+1, err, line)
		}
	}
	for i := range p.families {
		if err := validateFamily(&p.families[i]); err != nil {
			return nil, err
		}
	}
	return p.families, nil
}

type parser struct {
	families []Family
	byName   map[string]*Family
	closed   map[string]bool // families a later family has sealed
	series   map[string]bool // dedup of name + sorted label set
}

func (p *parser) line(line string) error {
	if strings.TrimSpace(line) == "" {
		return nil
	}
	if strings.HasPrefix(line, "#") {
		return p.comment(line)
	}
	return p.sample(line)
}

// comment handles # HELP / # TYPE headers; other comments are skipped.
func (p *parser) comment(line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
		return nil // free-form comment
	}
	name := fields[2]
	if !validMetricName(name) {
		return fmt.Errorf("invalid metric name %q", name)
	}
	switch fields[1] {
	case "HELP":
		if f := p.byName[name]; f != nil {
			return fmt.Errorf("duplicate HELP for family %s", name)
		}
		p.open(name)
		if len(fields) == 4 {
			p.byName[name].Help = fields[3]
		}
	case "TYPE":
		if len(fields) != 4 {
			return fmt.Errorf("TYPE needs a type")
		}
		typ := fields[3]
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown type %q", typ)
		}
		f := p.byName[name]
		if f == nil {
			p.open(name)
			f = p.byName[name]
		} else if f.Type != "" {
			return fmt.Errorf("duplicate TYPE for family %s", name)
		} else if len(f.Samples) > 0 {
			return fmt.Errorf("TYPE for %s after its samples", name)
		}
		if f != &p.families[len(p.families)-1] {
			return fmt.Errorf("family %s re-opened after another family started", name)
		}
		f.Type = typ
	}
	return nil
}

// open starts a new family, sealing all earlier ones against reuse.
func (p *parser) open(name string) {
	if p.closed == nil {
		p.closed = make(map[string]bool)
	}
	for i := range p.families {
		p.closed[p.families[i].Name] = true
	}
	p.families = append(p.families, Family{Name: name})
	p.byName[name] = &p.families[len(p.families)-1]
	// byName holds pointers into the slice: re-point survivors after
	// a potential reallocation by append.
	for i := range p.families {
		p.byName[p.families[i].Name] = &p.families[i]
	}
}

// sample parses one series line and attaches it to its family.
func (p *parser) sample(line string) error {
	s, err := parseSample(line)
	if err != nil {
		return err
	}
	fam := p.familyOf(s.Name)
	if fam == nil {
		return fmt.Errorf("sample %s has no preceding # TYPE header", s.Name)
	}
	if p.closed[fam.Name] {
		return fmt.Errorf("family %s interleaved with a later family", fam.Name)
	}
	if !sampleNameAllowed(fam, s.Name) {
		return fmt.Errorf("series %s not valid in %s family %s", s.Name, fam.Type, fam.Name)
	}
	key := seriesKey(s)
	if p.series[key] {
		return fmt.Errorf("duplicate series %s", key)
	}
	p.series[key] = true
	fam.Samples = append(fam.Samples, s)
	return nil
}

// familyOf maps a series name to its family, peeling histogram and
// summary suffixes.
func (p *parser) familyOf(name string) *Family {
	if f := p.byName[name]; f != nil {
		return f
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name {
			if f := p.byName[base]; f != nil && (f.Type == "histogram" || f.Type == "summary") {
				return f
			}
		}
	}
	return nil
}

// sampleNameAllowed enforces the per-type series-name contract.
func sampleNameAllowed(f *Family, name string) bool {
	switch f.Type {
	case "histogram", "summary":
		return name == f.Name+"_bucket" || name == f.Name+"_sum" || name == f.Name+"_count" || name == f.Name
	default:
		return name == f.Name
	}
}

// parseSample parses `name{label="value",...} value [timestamp]`.
func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	i := 0
	for i < len(line) && isNameChar(line[i], i == 0) {
		i++
	}
	s.Name = line[:i]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid series name %q", s.Name)
	}
	if i < len(line) && line[i] == '{' {
		rest, err := parseLabels(line[i+1:], &s)
		if err != nil {
			return s, err
		}
		line = rest
	} else {
		line = line[i:]
	}
	if len(line) == 0 || line[0] != ' ' {
		return s, fmt.Errorf("expected space before value")
	}
	// An OpenMetrics exemplar may follow the value: ` # {labels} value
	// [timestamp]`. The value/timestamp portion contains no quoted
	// strings, so the first " # " is unambiguously the separator.
	if i := strings.Index(line, " # "); i >= 0 {
		ex, err := parseExemplar(line[i+3:])
		if err != nil {
			return s, err
		}
		s.Exemplar = ex
		line = line[:i]
	}
	fields := strings.Fields(line)
	if len(fields) != 1 && len(fields) != 2 {
		return s, fmt.Errorf("expected value [timestamp], got %d fields", len(fields))
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %w", fields[0], err)
	}
	s.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return s, nil
}

// parseExemplar parses `{label="value",...} value [timestamp]` — the
// portion of a sample line after the ` # ` exemplar separator.
func parseExemplar(text string) (*Exemplar, error) {
	if len(text) == 0 || text[0] != '{' {
		return nil, fmt.Errorf("exemplar must start with a label set")
	}
	var tmp Sample
	tmp.Labels = map[string]string{}
	rest, err := parseLabels(text[1:], &tmp)
	if err != nil {
		return nil, fmt.Errorf("exemplar labels: %w", err)
	}
	fields := strings.Fields(rest)
	if len(fields) != 1 && len(fields) != 2 {
		return nil, fmt.Errorf("exemplar: expected value [timestamp], got %d fields", len(fields))
	}
	ex := &Exemplar{Labels: tmp.Labels}
	ex.Value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return nil, fmt.Errorf("bad exemplar value %q: %w", fields[0], err)
	}
	if len(fields) == 2 {
		// OpenMetrics exemplar timestamps are seconds, fractional ok.
		ex.Timestamp, err = strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("bad exemplar timestamp %q", fields[1])
		}
		ex.HasTimestamp = true
	}
	return ex, nil
}

// parseLabels consumes `label="value",...}` and returns the remainder
// of the line after the closing brace.
func parseLabels(rest string, s *Sample) (string, error) {
	for {
		if len(rest) == 0 {
			return "", fmt.Errorf("unterminated label set")
		}
		if rest[0] == '}' {
			return rest[1:], nil
		}
		i := 0
		for i < len(rest) && isLabelChar(rest[i], i == 0) {
			i++
		}
		name := rest[:i]
		if !validLabelName(name) {
			return "", fmt.Errorf("invalid label name %q", name)
		}
		if _, dup := s.Labels[name]; dup {
			return "", fmt.Errorf("duplicate label %q", name)
		}
		if i+1 >= len(rest) || rest[i] != '=' || rest[i+1] != '"' {
			return "", fmt.Errorf(`label %q not followed by ="`, name)
		}
		value, after, err := parseQuoted(rest[i+2:])
		if err != nil {
			return "", err
		}
		s.Labels[name] = value
		rest = after
		if len(rest) > 0 && rest[0] == ',' {
			rest = rest[1:]
		} else if len(rest) == 0 || rest[0] != '}' {
			return "", fmt.Errorf("expected , or } after label %q", name)
		}
	}
}

// parseQuoted consumes an escaped label value up to its closing quote.
// The format escapes exactly backslash, double-quote, and newline.
func parseQuoted(rest string) (string, string, error) {
	var b strings.Builder
	for i := 0; i < len(rest); i++ {
		switch rest[i] {
		case '"':
			return b.String(), rest[i+1:], nil
		case '\\':
			i++
			if i >= len(rest) {
				return "", "", fmt.Errorf("trailing backslash in label value")
			}
			switch rest[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf(`unknown escape \%c in label value`, rest[i])
			}
		case '\n':
			return "", "", fmt.Errorf("raw newline in label value")
		default:
			b.WriteByte(rest[i])
		}
	}
	return "", "", fmt.Errorf("unterminated label value")
}

// validateFamily runs the per-type semantic checks — for histograms,
// the bucket invariants the scraper relies on.
func validateFamily(f *Family) error {
	if f.Type == "" {
		return fmt.Errorf("family %s has HELP but no TYPE", f.Name)
	}
	// OpenMetrics allows exemplars only on counters and histogram
	// buckets.
	for i := range f.Samples {
		s := &f.Samples[i]
		if s.Exemplar == nil {
			continue
		}
		if f.Type != "counter" && !(f.Type == "histogram" && s.Name == f.Name+"_bucket") {
			return fmt.Errorf("%s: exemplar on %s series %s", f.Name, f.Type, s.Name)
		}
	}
	if f.Type != "histogram" {
		return nil
	}
	return validateHistogram(f)
}

// validateHistogram checks each series set (label set minus le) of a
// histogram family: increasing le order, non-decreasing cumulative
// counts, a terminal +Inf bucket agreeing with _count, and exactly one
// _sum and _count.
func validateHistogram(f *Family) error {
	type set struct {
		les          []float64
		counts       []float64
		exes         []*Exemplar
		count        float64
		nCount, nSum int
	}
	sets := make(map[string]*set)
	order := []string{}
	get := func(s Sample) *set {
		labels := make(map[string]string, len(s.Labels))
		for k, v := range s.Labels {
			if k != "le" {
				labels[k] = v
			}
		}
		key := seriesKey(Sample{Name: f.Name, Labels: labels})
		if sets[key] == nil {
			sets[key] = &set{}
			order = append(order, key)
		}
		return sets[key]
	}
	for _, s := range f.Samples {
		switch s.Name {
		case f.Name + "_bucket":
			le, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("%s: bucket without le label", f.Name)
			}
			bound, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return fmt.Errorf("%s: bad le %q", f.Name, le)
			}
			g := get(s)
			g.les = append(g.les, bound)
			g.counts = append(g.counts, s.Value)
			g.exes = append(g.exes, s.Exemplar)
		case f.Name + "_sum":
			get(s).nSum++
		case f.Name + "_count":
			g := get(s)
			g.nCount++
			g.count = s.Value
		}
	}
	for _, key := range order {
		g := sets[key]
		if len(g.les) == 0 {
			return fmt.Errorf("%s{%s}: no buckets", f.Name, key)
		}
		for i := 1; i < len(g.les); i++ {
			if g.les[i] <= g.les[i-1] {
				return fmt.Errorf("%s{%s}: le out of order (%g after %g)", f.Name, key, g.les[i], g.les[i-1])
			}
			if g.counts[i] < g.counts[i-1] {
				return fmt.Errorf("%s{%s}: bucket counts not cumulative (%g after %g)", f.Name, key, g.counts[i], g.counts[i-1])
			}
		}
		last := len(g.les) - 1
		if !math.IsInf(g.les[last], +1) {
			return fmt.Errorf("%s{%s}: missing terminal +Inf bucket", f.Name, key)
		}
		if g.nCount != 1 || g.nSum != 1 {
			return fmt.Errorf("%s{%s}: want exactly one _sum and _count, got %d and %d", f.Name, key, g.nSum, g.nCount)
		}
		if g.counts[last] != g.count {
			return fmt.Errorf("%s{%s}: +Inf bucket %g != _count %g", f.Name, key, g.counts[last], g.count)
		}
		// An exemplar must fall within its bucket's bounds: value ≤ le
		// and above the preceding bound — otherwise the linked task
		// never landed in the bucket that claims it.
		for i, ex := range g.exes {
			if ex == nil {
				continue
			}
			if ex.Value > g.les[i] {
				return fmt.Errorf("%s{%s}: exemplar value %g above its bucket bound le=%g", f.Name, key, ex.Value, g.les[i])
			}
			if i > 0 && ex.Value <= g.les[i-1] {
				return fmt.Errorf("%s{%s}: exemplar value %g not above the preceding bound le=%g", f.Name, key, ex.Value, g.les[i-1])
			}
		}
	}
	return nil
}

// seriesKey canonicalizes name + label set for duplicate detection.
func seriesKey(s Sample) string {
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.Name)
	for _, k := range keys {
		fmt.Fprintf(&b, ",%s=%q", k, s.Labels[k])
	}
	return b.String()
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		if !isNameChar(name[i], i == 0) {
			return false
		}
	}
	return true
}

func validLabelName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		if !isLabelChar(name[i], i == 0) {
			return false
		}
	}
	return true
}

func isNameChar(c byte, first bool) bool {
	letter := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':'
	if first {
		return letter
	}
	return letter || c >= '0' && c <= '9'
}

func isLabelChar(c byte, first bool) bool {
	letter := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
	if first {
		return letter
	}
	return letter || c >= '0' && c <= '9'
}
