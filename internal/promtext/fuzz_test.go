package promtext

import (
	"testing"
)

// FuzzParse feeds the strict exposition parser arbitrary documents: it
// must never panic, and any document it accepts must survive a
// Render/reparse cycle with an identical canonical form (sample
// timestamps are validated then dropped, so they canonicalize away;
// exemplars — labels, value, and timestamp — round-trip).
func FuzzParse(f *testing.F) {
	f.Add("")
	f.Add("# HELP funcx_tasks_submitted_total Tasks accepted.\n# TYPE funcx_tasks_submitted_total counter\nfuncx_tasks_submitted_total 42\n")
	f.Add("# TYPE funcx_event_streams gauge\nfuncx_event_streams{shard=\"s1\"} 3 1700000000\n")
	f.Add("# TYPE funcx_task_stage_seconds histogram\n" +
		"funcx_task_stage_seconds_bucket{stage=\"queue\",le=\"0.1\"} 1\n" +
		"funcx_task_stage_seconds_bucket{stage=\"queue\",le=\"+Inf\"} 2\n" +
		"funcx_task_stage_seconds_sum{stage=\"queue\"} 0.3\n" +
		"funcx_task_stage_seconds_count{stage=\"queue\"} 2\n")
	f.Add("# TYPE m counter\nm{a=\"x\\\\y\\\"z\\nw\"} 1\n")
	f.Add("# TYPE m counter\nm NaN\n")
	f.Add("# TYPE a counter\na 1\n# TYPE b counter\na 2\n")
	f.Add("# TYPE funcx_task_stage_seconds histogram\n" +
		"funcx_task_stage_seconds_bucket{stage=\"queue\",le=\"0.1\"} 1 # {task_id=\"t-1\",trace_id=\"0af7651916cd43dd8448eb211c80319c\"} 0.05\n" +
		"funcx_task_stage_seconds_bucket{stage=\"queue\",le=\"+Inf\"} 2\n" +
		"funcx_task_stage_seconds_sum{stage=\"queue\"} 0.3\n" +
		"funcx_task_stage_seconds_count{stage=\"queue\"} 2\n")
	f.Add("# TYPE c_total counter\nc_total 5 # {trace_id=\"abc\"} 3 1700000000.5\n")
	f.Fuzz(func(t *testing.T, text string) {
		families, err := Parse(text)
		if err != nil {
			return
		}
		doc := Render(families)
		reparsed, err := Parse(doc)
		if err != nil {
			t.Fatalf("accepted document failed to reparse after render: %v\noriginal: %q\nrendered: %q", err, text, doc)
		}
		if doc2 := Render(reparsed); doc != doc2 {
			t.Fatalf("render/reparse is not a fixed point:\n first %q\nsecond %q", doc, doc2)
		}
	})
}
