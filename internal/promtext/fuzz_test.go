package promtext

import (
	"sort"
	"strconv"
	"strings"
	"testing"
)

// render writes families back out in the exposition format, with label
// keys sorted so the output is deterministic. It is the inverse the
// fuzzer closes the loop with: any document Parse accepts must render
// to a form Parse accepts again, and that form must be a fixed point.
func render(families []Family) string {
	var b strings.Builder
	for _, f := range families {
		if f.Help != "" {
			b.WriteString("# HELP " + f.Name + " " + f.Help + "\n")
		}
		b.WriteString("# TYPE " + f.Name + " " + f.Type + "\n")
		for _, s := range f.Samples {
			b.WriteString(s.Name)
			if len(s.Labels) > 0 {
				keys := make([]string, 0, len(s.Labels))
				for k := range s.Labels {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				b.WriteByte('{')
				for i, k := range keys {
					if i > 0 {
						b.WriteByte(',')
					}
					b.WriteString(k + `="` + escapeLabel(s.Labels[k]) + `"`)
				}
				b.WriteByte('}')
			}
			b.WriteByte(' ')
			b.WriteString(strconv.FormatFloat(s.Value, 'g', -1, 64))
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// FuzzParse feeds the strict exposition parser arbitrary documents: it
// must never panic, and any document it accepts must survive a
// render/reparse cycle with an identical canonical form (timestamps
// are validated then dropped, so they canonicalize away).
func FuzzParse(f *testing.F) {
	f.Add("")
	f.Add("# HELP funcx_tasks_submitted_total Tasks accepted.\n# TYPE funcx_tasks_submitted_total counter\nfuncx_tasks_submitted_total 42\n")
	f.Add("# TYPE funcx_event_streams gauge\nfuncx_event_streams{shard=\"s1\"} 3 1700000000\n")
	f.Add("# TYPE funcx_task_stage_seconds histogram\n" +
		"funcx_task_stage_seconds_bucket{stage=\"queue\",le=\"0.1\"} 1\n" +
		"funcx_task_stage_seconds_bucket{stage=\"queue\",le=\"+Inf\"} 2\n" +
		"funcx_task_stage_seconds_sum{stage=\"queue\"} 0.3\n" +
		"funcx_task_stage_seconds_count{stage=\"queue\"} 2\n")
	f.Add("# TYPE m counter\nm{a=\"x\\\\y\\\"z\\nw\"} 1\n")
	f.Add("# TYPE m counter\nm NaN\n")
	f.Add("# TYPE a counter\na 1\n# TYPE b counter\na 2\n")
	f.Fuzz(func(t *testing.T, text string) {
		families, err := Parse(text)
		if err != nil {
			return
		}
		doc := render(families)
		reparsed, err := Parse(doc)
		if err != nil {
			t.Fatalf("accepted document failed to reparse after render: %v\noriginal: %q\nrendered: %q", err, text, doc)
		}
		if doc2 := render(reparsed); doc != doc2 {
			t.Fatalf("render/reparse is not a fixed point:\n first %q\nsecond %q", doc, doc2)
		}
	})
}
