package promtext

import (
	"strings"
	"testing"
)

const goodDoc = `# HELP funcx_tasks_submitted_total Tasks accepted.
# TYPE funcx_tasks_submitted_total counter
funcx_tasks_submitted_total{shard="s-1"} 42
# HELP funcx_task_stage_seconds Per-stage latency.
# TYPE funcx_task_stage_seconds histogram
funcx_task_stage_seconds_bucket{stage="execute",le="0.001"} 1
funcx_task_stage_seconds_bucket{stage="execute",le="0.01"} 3
funcx_task_stage_seconds_bucket{stage="execute",le="+Inf"} 5
funcx_task_stage_seconds_sum{stage="execute"} 0.25
funcx_task_stage_seconds_count{stage="execute"} 5
`

func TestParseGoodDocument(t *testing.T) {
	fams, err := Parse(goodDoc)
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 2 {
		t.Fatalf("families = %d, want 2", len(fams))
	}
	c := Get(fams, "funcx_tasks_submitted_total")
	if c == nil || c.Type != "counter" || len(c.Samples) != 1 || c.Samples[0].Value != 42 {
		t.Fatalf("counter family mangled: %+v", c)
	}
	if got := c.Samples[0].Labels["shard"]; got != "s-1" {
		t.Fatalf("shard label = %q", got)
	}
	h := Get(fams, "funcx_task_stage_seconds")
	if h == nil || h.Type != "histogram" || len(h.Samples) != 5 {
		t.Fatalf("histogram family mangled: %+v", h)
	}
	if s := h.Sample(map[string]string{"le": "+Inf"}); s == nil || s.Value != 5 {
		t.Fatalf("+Inf bucket lookup: %+v", s)
	}
}

func TestParseUnescapesLabelValues(t *testing.T) {
	doc := "# HELP m x\n# TYPE m gauge\n" +
		`m{v="a\"b\\c\nd"} 1` + "\n"
	fams, err := Parse(doc)
	if err != nil {
		t.Fatal(err)
	}
	want := "a\"b\\c\nd"
	if got := fams[0].Samples[0].Labels["v"]; got != want {
		t.Fatalf("unescaped %q, want %q", got, want)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"sample without TYPE": "orphan 1\n",
		"duplicate series":    "# TYPE m gauge\nm{a=\"1\"} 1\nm{a=\"1\"} 2\n",
		"duplicate TYPE":      "# TYPE m gauge\n# TYPE m counter\nm 1\n",
		"bad label escape":    "# TYPE m gauge\nm{a=\"\\t\"} 1\n",
		"unterminated labels": "# TYPE m gauge\nm{a=\"1\" 1\n",
		"bad value":           "# TYPE m gauge\nm one\n",
		"bad metric name":     "# TYPE 0m gauge\n0m 1\n",
		"duplicate label":     "# TYPE m gauge\nm{a=\"1\",a=\"2\"} 1\n",
		"wrong series name":   "# TYPE m gauge\nm_other 1\n",
		"interleaved families": "# TYPE m gauge\nm 1\n" +
			"# TYPE n gauge\nn 1\nm{x=\"2\"} 2\n",
		"help only, no type": "# HELP m x\nm 1\n",
	}
	for name, doc := range cases {
		if _, err := Parse(doc); err == nil {
			t.Errorf("%s: parse accepted malformed document", name)
		}
	}
}

func TestParseRejectsBrokenHistograms(t *testing.T) {
	header := "# TYPE h histogram\n"
	cases := map[string]string{
		"missing +Inf": header +
			"h_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"non-cumulative buckets": header +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"le out of order": header +
			"h_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n",
		"inf disagrees with count": header +
			"h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n",
		"missing sum": header +
			"h_bucket{le=\"+Inf\"} 1\nh_count 1\n",
		"bucket without le": header +
			"h_bucket 1\nh_sum 1\nh_count 1\n",
	}
	for name, doc := range cases {
		if _, err := Parse(doc); err == nil {
			t.Errorf("%s: parse accepted broken histogram", name)
		}
	}
	good := header + "h_bucket{le=\"0.5\"} 2\nh_bucket{le=\"+Inf\"} 4\nh_sum 1.5\nh_count 4\n"
	if _, err := Parse(good); err != nil {
		t.Fatalf("well-formed histogram rejected: %v", err)
	}
}

func TestHistogramSetsSplitByLabels(t *testing.T) {
	// Two label sets in one family validate independently: a +Inf
	// missing from one set must be reported even though the other has
	// it.
	doc := "# TYPE h histogram\n" +
		"h_bucket{ep=\"a\",le=\"+Inf\"} 1\nh_sum{ep=\"a\"} 1\nh_count{ep=\"a\"} 1\n" +
		"h_bucket{ep=\"b\",le=\"1\"} 1\nh_sum{ep=\"b\"} 1\nh_count{ep=\"b\"} 1\n"
	_, err := Parse(doc)
	if err == nil || !strings.Contains(err.Error(), "+Inf") {
		t.Fatalf("want missing +Inf for set b, got %v", err)
	}
}
