package promtext

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Merge folds per-shard exposition documents into one fleet document:
// counter values and histogram components (_bucket, _sum, _count) sum
// across shards after dropping shardLabel from their label sets, while
// gauge, summary, and untyped samples keep their per-shard series
// verbatim (a queue depth summed across shards is meaningful to no
// one; a per-shard gauge still is). Family order follows first
// appearance across the docs; a family appearing with two different
// types is an error. For merged histogram buckets, the first exemplar
// seen for a bucket wins. The result revalidates before returning, so
// a successful Merge always Renders to a Parse-clean document.
func Merge(docs [][]Family, shardLabel string) ([]Family, error) {
	var out []Family
	byName := map[string]int{}
	// summed maps a merged family index to its summable series:
	// seriesKey (shard label stripped) → sample index in the family.
	summed := map[int]map[string]int{}
	kept := map[int]map[string]bool{}

	for _, doc := range docs {
		for fi := range doc {
			f := &doc[fi]
			idx, ok := byName[f.Name]
			if !ok {
				idx = len(out)
				byName[f.Name] = idx
				out = append(out, Family{Name: f.Name, Type: f.Type, Help: f.Help})
				summed[idx] = map[string]int{}
				kept[idx] = map[string]bool{}
			}
			m := &out[idx]
			if m.Type != f.Type {
				return nil, fmt.Errorf("family %s: type %s on one shard, %s on another", f.Name, m.Type, f.Type)
			}
			if m.Help == "" {
				m.Help = f.Help
			}
			sum := f.Type == "counter" || f.Type == "histogram"
			for _, s := range f.Samples {
				if !sum {
					key := seriesKey(s)
					if kept[idx][key] {
						continue
					}
					kept[idx][key] = true
					m.Samples = append(m.Samples, s)
					continue
				}
				stripped := Sample{Name: s.Name, Labels: make(map[string]string, len(s.Labels)), Value: s.Value, Exemplar: s.Exemplar}
				for k, v := range s.Labels {
					if k != shardLabel {
						stripped.Labels[k] = v
					}
				}
				key := seriesKey(stripped)
				if si, ok := summed[idx][key]; ok {
					m.Samples[si].Value += stripped.Value
					if m.Samples[si].Exemplar == nil {
						m.Samples[si].Exemplar = stripped.Exemplar
					}
				} else {
					summed[idx][key] = len(m.Samples)
					m.Samples = append(m.Samples, stripped)
				}
			}
		}
	}
	for i := range out {
		if err := validateFamily(&out[i]); err != nil {
			return nil, fmt.Errorf("merged document invalid: %w", err)
		}
	}
	return out, nil
}

// Render writes families back out as text exposition — 0.0.4 plus the
// OpenMetrics exemplar extension — such that Parse(Render(f))
// round-trips. Label keys are emitted in sorted order.
func Render(families []Family) string {
	var b strings.Builder
	for i := range families {
		f := &families[i]
		if f.Help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.Name, f.Help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.Name, f.Type)
		for _, s := range f.Samples {
			b.WriteString(s.Name)
			writeLabels(&b, s.Labels)
			b.WriteByte(' ')
			b.WriteString(formatValue(s.Value))
			if s.Exemplar != nil {
				b.WriteString(" # ")
				writeLabels(&b, s.Exemplar.Labels)
				b.WriteByte(' ')
				b.WriteString(formatValue(s.Exemplar.Value))
				if s.Exemplar.HasTimestamp {
					b.WriteByte(' ')
					b.WriteString(formatValue(s.Exemplar.Timestamp))
				}
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func writeLabels(b *strings.Builder, labels map[string]string) {
	if len(labels) == 0 {
		b.WriteString("{}")
		return
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(labels[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

// escapeLabelValue applies the format's three escapes (backslash,
// double-quote, newline).
func escapeLabelValue(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
