// Package router is the funcX service's federated placement engine.
// The HPDC 2020 paper makes the user pick an endpoint for every task
// (`Run(fnID, epID, payload)`); the follow-up federated-FaaS work
// (IEEE TPDS 2022) moves placement into the service so a submission
// may instead name an *endpoint group* — a fleet of endpoints — and
// let the service choose where each task runs.
//
// The router consults the live types.EndpointStatus heartbeat
// snapshots the forwarders already collect (Connected,
// OutstandingTasks, QueuedTasks, Workers) and applies a pluggable
// placement policy:
//
//   - round-robin: rotate through healthy members.
//   - least-outstanding: the member with the smallest backlog
//     (queued + outstanding tasks).
//   - weighted-queue-depth: the member with the smallest backlog per
//     unit of capacity (static member weight, or live worker count).
//   - label-affinity: the member matching the most selector labels,
//     backlog-tie-broken.
//
// Placement is health-aware: disconnected members are skipped, and
// when an endpoint dies the service re-routes its still-queued
// group-placed tasks through Route again (see service.failover).
package router

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"funcx/internal/types"
)

// Policy names a placement policy.
type Policy string

// The built-in placement policies.
const (
	RoundRobin         Policy = "round-robin"
	LeastOutstanding   Policy = "least-outstanding"
	WeightedQueueDepth Policy = "weighted-queue-depth"
	LabelAffinity      Policy = "label-affinity"
)

// DefaultPolicy is used when a group declares no policy.
const DefaultPolicy = LeastOutstanding

// Policies lists every built-in policy.
func Policies() []Policy {
	return []Policy{RoundRobin, LeastOutstanding, WeightedQueueDepth, LabelAffinity}
}

// ParsePolicy validates a policy name ("" selects DefaultPolicy).
func ParsePolicy(name string) (Policy, error) {
	if name == "" {
		return DefaultPolicy, nil
	}
	p := Policy(name)
	for _, known := range Policies() {
		if p == known {
			return p, nil
		}
	}
	return "", fmt.Errorf("router: unknown policy %q (have %v)", name, Policies())
}

// ErrNoCandidates is returned when a group has no members at all.
var ErrNoCandidates = errors.New("router: group has no candidate endpoints")

// ErrNoSelectorMatch is returned when a label selector matches no
// candidate: placing the task anyway would run it where it cannot
// succeed, so the submission is rejected instead.
var ErrNoSelectorMatch = errors.New("router: no group member matches the label selector")

// Candidate is one group member presented to a policy: its identity,
// declared labels and weight, and the latest heartbeat snapshot.
type Candidate struct {
	EndpointID types.EndpointID
	// Labels are the endpoint's registration-time capability tags.
	Labels map[string]string
	// Weight is the static placement weight (0 = derive from Status
	// worker count).
	Weight int
	// Status is the live forwarder snapshot (never nil inside the
	// router; a missing status is treated as disconnected-with-zeros).
	Status types.EndpointStatus
	// Penalty is the endpoint's delivery-health handicap, expressed as
	// equivalent extra backlog tasks: load-aware policies add it to the
	// candidate's score, steering work away from members whose recent
	// dispatches were reclaimed or lost (see the service's reclaim
	// EWMA). Zero for healthy members; decays back to zero on its own.
	Penalty float64
}

// backlog is the candidate's total uncompleted work: tasks waiting in
// its service-side queue plus tasks dispatched but unfinished.
func (c *Candidate) backlog() int {
	return c.Status.QueuedTasks + c.Status.OutstandingTasks
}

// loadScore is the candidate's backlog plus its delivery-health
// penalty — the quantity the load-aware policies minimize.
func (c *Candidate) loadScore() float64 {
	return float64(c.backlog()) + c.Penalty
}

// capacity is the divisor for weighted-queue-depth: the static weight
// when declared, else the live worker count, floored at 1 so empty
// endpoints still rank.
func (c *Candidate) capacity() int {
	w := c.Weight
	if w <= 0 {
		w = c.Status.Workers
	}
	if w <= 0 {
		w = 1
	}
	return w
}

// matches counts how many selector pairs the candidate's labels
// satisfy, and reports whether all of them are satisfied.
func (c *Candidate) matches(selector map[string]string) (n int, all bool) {
	all = true
	for k, v := range selector {
		if c.Labels[k] == v {
			n++
		} else {
			all = false
		}
	}
	return n, all
}

// MatchesSelector reports whether labels satisfy every selector pair —
// the single definition of selector semantics, shared with the
// service's submit-time validation so placement and validation cannot
// diverge.
func MatchesSelector(labels, selector map[string]string) bool {
	for k, v := range selector {
		if labels[k] != v {
			return false
		}
	}
	return true
}

// Request is one placement decision's input.
type Request struct {
	Group *types.EndpointGroup
	// Selector optionally constrains placement to endpoints carrying
	// these labels. Policies other than label-affinity treat it as a
	// hard constraint (ErrNoSelectorMatch when nothing satisfies it);
	// label-affinity treats it as a soft preference, scoring by match
	// count among healthy members.
	Selector map[string]string
	// Exclude removes endpoints from consideration (failover re-routes
	// exclude the dead endpoint even if its status still reads
	// connected).
	Exclude map[types.EndpointID]bool
	// Prefer, when set, pins placement to this endpoint as long as it
	// survives the selector and connectivity stages — data-gravity
	// affinity for DAG children, which run where their parent's output
	// already lives. It is a preference, not a constraint: when the
	// preferred member is excluded, filtered, or disconnected the
	// group's policy decides as usual.
	Prefer types.EndpointID
}

// Router is the placement engine. It is stateless apart from the
// per-group round-robin cursors; group membership comes in with each
// request and endpoint health is read through the Statuses callback.
type Router struct {
	// Status returns the live heartbeat snapshot for an endpoint (nil
	// when the endpoint has no forwarder yet).
	Status func(types.EndpointID) *types.EndpointStatus
	// Labels returns the endpoint's registration-time labels.
	Labels func(types.EndpointID) map[string]string
	// Penalty optionally reports an endpoint's delivery-health
	// handicap in equivalent backlog tasks (the service feeds a
	// decaying reclaim/lost rate here); nil means no penalties.
	Penalty func(types.EndpointID) float64

	mu sync.Mutex
	// cursor holds the per-group round-robin position.
	cursor map[types.GroupID]int
}

// New builds a router over the given status and label sources.
func New(status func(types.EndpointID) *types.EndpointStatus, labels func(types.EndpointID) map[string]string) *Router {
	return &Router{
		Status: status,
		Labels: labels,
		cursor: make(map[types.GroupID]int),
	}
}

// Route picks the endpoint the next task for the group should run on.
//
// Selection proceeds in stages:
//  1. Build candidates from group members minus Exclude.
//  2. Apply the selector. For every policy except label-affinity it
//     is a hard constraint: nothing matching → ErrNoSelectorMatch
//     (better a submit-time error than a task placed where it cannot
//     succeed). The filter runs before the health check so the
//     constraint outweighs a transient disconnect: a task needing a
//     gpu waits for the gpu member rather than running where it
//     cannot. Label-affinity instead treats the selector as a soft
//     preference among healthy members (step 4).
//  3. Prefer connected members; if none is connected, keep every
//     candidate (the task waits in the chosen member's reliable queue
//     until its agent returns — same at-least-once behaviour as a
//     direct submission to a briefly offline endpoint).
//  4. Apply the group's policy.
func (r *Router) Route(req Request) (types.EndpointID, error) {
	if req.Group == nil || len(req.Group.Members) == 0 {
		return "", ErrNoCandidates
	}
	policy, err := ParsePolicy(req.Group.Policy)
	if err != nil {
		return "", err
	}

	// Labels are only consulted by selectors and the affinity policy;
	// skip the per-member registry lookups otherwise.
	needLabels := len(req.Selector) > 0 || policy == LabelAffinity
	cands := r.candidates(req, needLabels)
	if len(cands) == 0 {
		return "", fmt.Errorf("%w: group %s (all %d members excluded)",
			ErrNoCandidates, req.Group.ID, len(req.Group.Members))
	}
	if policy != LabelAffinity {
		cands = filterSelector(cands, req.Selector)
		if len(cands) == 0 {
			return "", fmt.Errorf("%w: group %s, selector %v",
				ErrNoSelectorMatch, req.Group.ID, req.Selector)
		}
	}
	cands = preferConnected(cands)
	if req.Prefer != "" {
		for i := range cands {
			if cands[i].EndpointID == req.Prefer {
				return req.Prefer, nil
			}
		}
	}

	switch policy {
	case RoundRobin:
		return r.pickRoundRobin(req.Group.ID, cands), nil
	case WeightedQueueDepth:
		return pickMin(cands, func(c *Candidate) float64 {
			return c.loadScore() / float64(c.capacity())
		}), nil
	case LabelAffinity:
		return pickLabelAffinity(cands, req.Selector), nil
	default: // LeastOutstanding
		return pickMin(cands, (*Candidate).loadScore), nil
	}
}

// RouteBatch places n tasks of one request in a single decision,
// splitting the batch across members proportionally to live capacity
// (largest-remainder apportionment) instead of re-running Route n
// times against a snapshot that cannot observe the batch's own load.
// The returned slice has length n, grouped by member. Round-robin
// groups split evenly; the load-aware policies weight each member by
// its free capacity (capacity − backlog − penalty, floored at zero),
// falling back to raw capacity when the whole group is saturated;
// label-affinity restricts the split to the best-matching members.
func (r *Router) RouteBatch(req Request, n int) ([]types.EndpointID, error) {
	if n <= 0 {
		return nil, nil
	}
	if req.Group == nil || len(req.Group.Members) == 0 {
		return nil, ErrNoCandidates
	}
	policy, err := ParsePolicy(req.Group.Policy)
	if err != nil {
		return nil, err
	}
	needLabels := len(req.Selector) > 0 || policy == LabelAffinity
	cands := r.candidates(req, needLabels)
	if len(cands) == 0 {
		return nil, fmt.Errorf("%w: group %s (all %d members excluded)",
			ErrNoCandidates, req.Group.ID, len(req.Group.Members))
	}
	if policy != LabelAffinity {
		cands = filterSelector(cands, req.Selector)
		if len(cands) == 0 {
			return nil, fmt.Errorf("%w: group %s, selector %v",
				ErrNoSelectorMatch, req.Group.ID, req.Selector)
		}
	}
	cands = preferConnected(cands)
	if policy == LabelAffinity && len(req.Selector) > 0 {
		cands = bestAffinity(cands, req.Selector)
	}

	weights := make([]float64, len(cands))
	switch policy {
	case RoundRobin:
		for i := range weights {
			weights[i] = 1
		}
	default:
		// Free capacity per member; when the whole group is saturated,
		// split by raw capacity so the batch still spreads.
		saturated := true
		for i := range cands {
			free := float64(cands[i].capacity()) - cands[i].loadScore()
			if free > 0 {
				weights[i] = free
				saturated = false
			}
		}
		if saturated {
			for i := range cands {
				weights[i] = float64(cands[i].capacity())
			}
		}
	}
	quotas := apportion(n, weights)
	return interleave(cands, quotas, n), nil
}

// interleave emits the batch's placements striped round-robin across
// the members instead of in per-member runs. Runs concentrate
// consecutive batch positions on one endpoint, so a member dying
// mid-batch takes out a contiguous block of the caller's work (the
// worst case for callers that pipeline on batch order); striping
// spreads any single failure evenly across the batch. The quota split
// is preserved exactly — only emission order changes.
func interleave(cands []Candidate, quotas []int, n int) []types.EndpointID {
	out := make([]types.EndpointID, 0, n)
	remaining := append([]int(nil), quotas...)
	for len(out) < n {
		emitted := false
		for i := range remaining {
			if remaining[i] > 0 {
				remaining[i]--
				out = append(out, cands[i].EndpointID)
				emitted = true
			}
		}
		if !emitted {
			break // quotas exhausted (sum < n cannot happen; guard anyway)
		}
	}
	return out
}

// bestAffinity keeps the candidates with the maximum selector match
// count (label-affinity's soft preference, applied batch-wide).
func bestAffinity(cands []Candidate, selector map[string]string) []Candidate {
	best := -1
	for i := range cands {
		if n, _ := cands[i].matches(selector); n > best {
			best = n
		}
	}
	out := make([]Candidate, 0, len(cands))
	for i := range cands {
		if n, _ := cands[i].matches(selector); n == best {
			out = append(out, cands[i])
		}
	}
	return out
}

// apportion splits n into integer quotas proportional to weights using
// the largest-remainder method: exact totals, deterministic ties
// (earlier member wins), no member starved below its floor.
func apportion(n int, weights []float64) []int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	quotas := make([]int, len(weights))
	if total <= 0 {
		// Degenerate: spread evenly.
		for i := 0; n > 0; i = (i + 1) % len(quotas) {
			quotas[i]++
			n--
		}
		return quotas
	}
	type rem struct {
		i    int
		frac float64
	}
	rems := make([]rem, 0, len(weights))
	assigned := 0
	for i, w := range weights {
		if w < 0 {
			w = 0
		}
		exact := float64(n) * w / total
		quotas[i] = int(exact)
		assigned += quotas[i]
		rems = append(rems, rem{i: i, frac: exact - float64(quotas[i])})
	}
	sort.SliceStable(rems, func(a, b int) bool { return rems[a].frac > rems[b].frac })
	for k := 0; assigned < n; k = (k + 1) % len(rems) {
		quotas[rems[k].i]++
		assigned++
	}
	return quotas
}

// candidates materializes the group members with live status (and,
// when needed, labels), dropping excluded endpoints.
func (r *Router) candidates(req Request, needLabels bool) []Candidate {
	cands := make([]Candidate, 0, len(req.Group.Members))
	for _, m := range req.Group.Members {
		if req.Exclude[m.EndpointID] {
			continue
		}
		c := Candidate{EndpointID: m.EndpointID, Weight: m.Weight}
		if r.Status != nil {
			if st := r.Status(m.EndpointID); st != nil {
				c.Status = *st
			}
		}
		if needLabels && r.Labels != nil {
			c.Labels = r.Labels(m.EndpointID)
		}
		if r.Penalty != nil {
			c.Penalty = r.Penalty(m.EndpointID)
		}
		cands = append(cands, c)
	}
	return cands
}

// preferConnected keeps only connected candidates when any exist.
func preferConnected(cands []Candidate) []Candidate {
	connected := make([]Candidate, 0, len(cands))
	for _, c := range cands {
		if c.Status.Connected {
			connected = append(connected, c)
		}
	}
	if len(connected) > 0 {
		return connected
	}
	return cands
}

// filterSelector keeps candidates satisfying every selector pair; an
// empty result means the constraint is unsatisfiable in this group.
func filterSelector(cands []Candidate, selector map[string]string) []Candidate {
	if len(selector) == 0 {
		return cands
	}
	matched := make([]Candidate, 0, len(cands))
	for _, c := range cands {
		if MatchesSelector(c.Labels, selector) {
			matched = append(matched, c)
		}
	}
	return matched
}

// pickRoundRobin rotates the group's cursor through the candidates.
func (r *Router) pickRoundRobin(gid types.GroupID, cands []Candidate) types.EndpointID {
	r.mu.Lock()
	defer r.mu.Unlock()
	i := r.cursor[gid] % len(cands)
	r.cursor[gid]++
	return cands[i].EndpointID
}

// pickMin returns the candidate with the smallest score, preserving
// member order on ties so selection is deterministic.
func pickMin(cands []Candidate, score func(*Candidate) float64) types.EndpointID {
	best, bestScore := 0, score(&cands[0])
	for i := 1; i < len(cands); i++ {
		if s := score(&cands[i]); s < bestScore {
			best, bestScore = i, s
		}
	}
	return cands[best].EndpointID
}

// pickLabelAffinity ranks by selector match count (more is better),
// breaking ties by smallest backlog. With no selector it degrades to
// least-outstanding. Affinity is deliberately soft: it runs over the
// healthy pool, so a task prefers a matching member but still runs
// elsewhere when none is available — use a selector with any other
// policy for a hard capability constraint.
func pickLabelAffinity(cands []Candidate, selector map[string]string) types.EndpointID {
	best := 0
	bestMatches, _ := cands[0].matches(selector)
	bestLoad := cands[0].loadScore()
	for i := 1; i < len(cands); i++ {
		n, _ := cands[i].matches(selector)
		b := cands[i].loadScore()
		if n > bestMatches || (n == bestMatches && b < bestLoad) {
			best, bestMatches, bestLoad = i, n, b
		}
	}
	return cands[best].EndpointID
}
