package router

import (
	"errors"
	"testing"

	"funcx/internal/types"
)

// fixture builds a router over static status/label tables plus a
// group whose members are the table's endpoints in order.
type fixture struct {
	statuses map[types.EndpointID]*types.EndpointStatus
	labels   map[types.EndpointID]map[string]string
	group    *types.EndpointGroup
}

func newFixture(policy Policy, members ...types.GroupMember) *fixture {
	return &fixture{
		statuses: make(map[types.EndpointID]*types.EndpointStatus),
		labels:   make(map[types.EndpointID]map[string]string),
		group: &types.EndpointGroup{
			ID:      types.NewGroupID(),
			Name:    "test-group",
			Policy:  string(policy),
			Members: members,
		},
	}
}

func (f *fixture) router() *Router {
	return New(
		func(id types.EndpointID) *types.EndpointStatus { return f.statuses[id] },
		func(id types.EndpointID) map[string]string { return f.labels[id] },
	)
}

func (f *fixture) setStatus(id types.EndpointID, connected bool, queued, outstanding, workers int) {
	f.statuses[id] = &types.EndpointStatus{
		ID: id, Connected: connected,
		QueuedTasks: queued, OutstandingTasks: outstanding, Workers: workers,
	}
}

func members(ids ...types.EndpointID) []types.GroupMember {
	out := make([]types.GroupMember, len(ids))
	for i, id := range ids {
		out[i] = types.GroupMember{EndpointID: id}
	}
	return out
}

func TestParsePolicy(t *testing.T) {
	for _, p := range Policies() {
		got, err := ParsePolicy(string(p))
		if err != nil || got != p {
			t.Fatalf("ParsePolicy(%q) = %q, %v", p, got, err)
		}
	}
	if got, err := ParsePolicy(""); err != nil || got != DefaultPolicy {
		t.Fatalf("ParsePolicy(\"\") = %q, %v, want default", got, err)
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatal("ParsePolicy accepted bogus policy")
	}
}

func TestRoundRobinRotates(t *testing.T) {
	a, b, c := types.EndpointID("ep-a"), types.EndpointID("ep-b"), types.EndpointID("ep-c")
	f := newFixture(RoundRobin, members(a, b, c)...)
	for _, id := range []types.EndpointID{a, b, c} {
		f.setStatus(id, true, 0, 0, 4)
	}
	r := f.router()
	want := []types.EndpointID{a, b, c, a, b, c}
	for i, w := range want {
		got, err := r.Route(Request{Group: f.group})
		if err != nil {
			t.Fatalf("Route %d: %v", i, err)
		}
		if got != w {
			t.Fatalf("Route %d = %s, want %s", i, got, w)
		}
	}
}

func TestRoundRobinSkipsDisconnected(t *testing.T) {
	a, b, c := types.EndpointID("ep-a"), types.EndpointID("ep-b"), types.EndpointID("ep-c")
	f := newFixture(RoundRobin, members(a, b, c)...)
	f.setStatus(a, true, 0, 0, 4)
	f.setStatus(b, false, 0, 0, 4) // dead
	f.setStatus(c, true, 0, 0, 4)
	r := f.router()
	for i := 0; i < 6; i++ {
		got, err := r.Route(Request{Group: f.group})
		if err != nil {
			t.Fatalf("Route %d: %v", i, err)
		}
		if got == b {
			t.Fatalf("Route %d picked disconnected endpoint %s", i, b)
		}
	}
}

func TestLeastOutstandingPicksSmallestBacklog(t *testing.T) {
	a, b, c := types.EndpointID("ep-a"), types.EndpointID("ep-b"), types.EndpointID("ep-c")
	f := newFixture(LeastOutstanding, members(a, b, c)...)
	f.setStatus(a, true, 5, 3, 4)  // backlog 8
	f.setStatus(b, true, 1, 1, 4)  // backlog 2 <- expect
	f.setStatus(c, true, 10, 0, 4) // backlog 10
	got, err := f.router().Route(Request{Group: f.group})
	if err != nil {
		t.Fatalf("Route: %v", err)
	}
	if got != b {
		t.Fatalf("Route = %s, want %s (least backlog)", got, b)
	}
}

func TestLeastOutstandingTieBreaksByMemberOrder(t *testing.T) {
	a, b := types.EndpointID("ep-a"), types.EndpointID("ep-b")
	f := newFixture(LeastOutstanding, members(a, b)...)
	f.setStatus(a, true, 2, 0, 4)
	f.setStatus(b, true, 2, 0, 4)
	got, err := f.router().Route(Request{Group: f.group})
	if err != nil {
		t.Fatalf("Route: %v", err)
	}
	if got != a {
		t.Fatalf("Route = %s, want first member %s on tie", got, a)
	}
}

func TestWeightedQueueDepthNormalizesByCapacity(t *testing.T) {
	// big has twice the backlog but four times the workers: its
	// per-capacity depth (8/16 = 0.5) beats small's (4/4 = 1.0).
	big, small := types.EndpointID("ep-big"), types.EndpointID("ep-small")
	f := newFixture(WeightedQueueDepth, members(small, big)...)
	f.setStatus(small, true, 4, 0, 4)
	f.setStatus(big, true, 8, 0, 16)
	got, err := f.router().Route(Request{Group: f.group})
	if err != nil {
		t.Fatalf("Route: %v", err)
	}
	if got != big {
		t.Fatalf("Route = %s, want %s (smaller backlog per worker)", got, big)
	}
}

func TestWeightedQueueDepthHonorsStaticWeight(t *testing.T) {
	// Same live stats, but a declares weight 10 vs b's 1: a's
	// per-weight depth (4/10) beats b's (4/1).
	a, b := types.EndpointID("ep-a"), types.EndpointID("ep-b")
	f := newFixture(WeightedQueueDepth,
		types.GroupMember{EndpointID: a, Weight: 10},
		types.GroupMember{EndpointID: b, Weight: 1},
	)
	f.setStatus(a, true, 4, 0, 4)
	f.setStatus(b, true, 4, 0, 4)
	// b first in member order would win a tie; weight must override.
	f.group.Members[0], f.group.Members[1] = f.group.Members[1], f.group.Members[0]
	got, err := f.router().Route(Request{Group: f.group})
	if err != nil {
		t.Fatalf("Route: %v", err)
	}
	if got != a {
		t.Fatalf("Route = %s, want %s (higher static weight)", got, a)
	}
}

func TestLabelAffinityPrefersBestMatch(t *testing.T) {
	gpu, cpu := types.EndpointID("ep-gpu"), types.EndpointID("ep-cpu")
	f := newFixture(LabelAffinity, members(cpu, gpu)...)
	f.setStatus(cpu, true, 0, 0, 4)
	f.setStatus(gpu, true, 50, 10, 4) // heavily loaded but matching
	f.labels[gpu] = map[string]string{"gpu": "a100", "site": "anl"}
	f.labels[cpu] = map[string]string{"site": "anl"}
	got, err := f.router().Route(Request{
		Group:    f.group,
		Selector: map[string]string{"gpu": "a100"},
	})
	if err != nil {
		t.Fatalf("Route: %v", err)
	}
	if got != gpu {
		t.Fatalf("Route = %s, want %s (label match beats load)", got, gpu)
	}
}

func TestLabelAffinityTieBreaksByBacklog(t *testing.T) {
	a, b := types.EndpointID("ep-a"), types.EndpointID("ep-b")
	f := newFixture(LabelAffinity, members(a, b)...)
	f.setStatus(a, true, 9, 0, 4)
	f.setStatus(b, true, 1, 0, 4)
	f.labels[a] = map[string]string{"site": "anl"}
	f.labels[b] = map[string]string{"site": "anl"}
	got, err := f.router().Route(Request{
		Group:    f.group,
		Selector: map[string]string{"site": "anl"},
	})
	if err != nil {
		t.Fatalf("Route: %v", err)
	}
	if got != b {
		t.Fatalf("Route = %s, want %s (equal match, less backlog)", got, b)
	}
}

func TestSelectorHardFiltersOtherPolicies(t *testing.T) {
	idle, gpu := types.EndpointID("ep-idle"), types.EndpointID("ep-gpu")
	f := newFixture(LeastOutstanding, members(idle, gpu)...)
	f.setStatus(idle, true, 0, 0, 4)
	f.setStatus(gpu, true, 20, 0, 4)
	f.labels[gpu] = map[string]string{"gpu": "a100"}
	got, err := f.router().Route(Request{
		Group:    f.group,
		Selector: map[string]string{"gpu": "a100"},
	})
	if err != nil {
		t.Fatalf("Route: %v", err)
	}
	if got != gpu {
		t.Fatalf("Route = %s, want %s (selector constrains placement)", got, gpu)
	}
}

func TestUnsatisfiableSelectorRejected(t *testing.T) {
	// No member carries the requested label: error out rather than
	// silently placing the task where it cannot succeed.
	a, b := types.EndpointID("ep-a"), types.EndpointID("ep-b")
	f := newFixture(LeastOutstanding, members(a, b)...)
	f.setStatus(a, true, 0, 0, 4)
	f.setStatus(b, true, 0, 0, 4)
	_, err := f.router().Route(Request{
		Group:    f.group,
		Selector: map[string]string{"gpu": "a100"},
	})
	if !errors.Is(err, ErrNoSelectorMatch) {
		t.Fatalf("err = %v, want ErrNoSelectorMatch", err)
	}
}

func TestSelectorOutweighsTransientDisconnect(t *testing.T) {
	// The only gpu member is briefly offline: a gpu-constrained task
	// must wait in its queue, not run on a connected cpu member.
	cpu, gpu := types.EndpointID("ep-cpu"), types.EndpointID("ep-gpu")
	f := newFixture(LeastOutstanding, members(cpu, gpu)...)
	f.setStatus(cpu, true, 0, 0, 4)
	f.setStatus(gpu, false, 0, 0, 4)
	f.labels[gpu] = map[string]string{"gpu": "a100"}
	got, err := f.router().Route(Request{
		Group:    f.group,
		Selector: map[string]string{"gpu": "a100"},
	})
	if err != nil {
		t.Fatalf("Route: %v", err)
	}
	if got != gpu {
		t.Fatalf("Route = %s, want %s (capability beats connectivity)", got, gpu)
	}
}

func TestExcludeRemovesEndpoint(t *testing.T) {
	a, b := types.EndpointID("ep-a"), types.EndpointID("ep-b")
	f := newFixture(LeastOutstanding, members(a, b)...)
	f.setStatus(a, true, 0, 0, 4) // least loaded, but excluded
	f.setStatus(b, true, 9, 0, 4)
	got, err := f.router().Route(Request{
		Group:   f.group,
		Exclude: map[types.EndpointID]bool{a: true},
	})
	if err != nil {
		t.Fatalf("Route: %v", err)
	}
	if got != b {
		t.Fatalf("Route = %s, want %s (a excluded)", got, b)
	}
	if _, err := f.router().Route(Request{
		Group:   f.group,
		Exclude: map[types.EndpointID]bool{a: true, b: true},
	}); !errors.Is(err, ErrNoCandidates) {
		t.Fatalf("Route with all excluded: err = %v, want ErrNoCandidates", err)
	}
}

func TestAllDisconnectedFallsBackToQueueing(t *testing.T) {
	a, b := types.EndpointID("ep-a"), types.EndpointID("ep-b")
	f := newFixture(LeastOutstanding, members(a, b)...)
	f.setStatus(a, false, 3, 0, 4)
	f.setStatus(b, false, 1, 0, 4)
	got, err := f.router().Route(Request{Group: f.group})
	if err != nil {
		t.Fatalf("Route: %v", err)
	}
	if got != b {
		t.Fatalf("Route = %s, want %s (least backlog among offline members)", got, b)
	}
}

func TestMissingStatusTreatedAsDisconnected(t *testing.T) {
	a, b := types.EndpointID("ep-a"), types.EndpointID("ep-b")
	f := newFixture(RoundRobin, members(a, b)...)
	f.setStatus(b, true, 0, 0, 4)
	// a has no status at all: the connected member must win.
	for i := 0; i < 4; i++ {
		got, err := f.router().Route(Request{Group: f.group})
		if err != nil {
			t.Fatalf("Route: %v", err)
		}
		if got != b {
			t.Fatalf("Route = %s, want %s (only connected member)", got, b)
		}
	}
}

func TestUnknownGroupPolicyRejected(t *testing.T) {
	a := types.EndpointID("ep-a")
	f := newFixture(Policy("bogus"), members(a)...)
	f.setStatus(a, true, 0, 0, 4)
	if _, err := f.router().Route(Request{Group: f.group}); err == nil {
		t.Fatal("Route accepted unknown policy")
	}
}

func TestEmptyGroupRejected(t *testing.T) {
	f := newFixture(RoundRobin)
	if _, err := f.router().Route(Request{Group: f.group}); !errors.Is(err, ErrNoCandidates) {
		t.Fatalf("err = %v, want ErrNoCandidates", err)
	}
}

// --- fleet-aware batch placement ---

func countBy(ids []types.EndpointID) map[types.EndpointID]int {
	out := make(map[types.EndpointID]int)
	for _, id := range ids {
		out[id]++
	}
	return out
}

// RouteBatch must split a batch proportionally to free capacity with
// exact totals (largest remainder), not send everything to the single
// currently least-loaded member.
func TestRouteBatchProportionalToFreeCapacity(t *testing.T) {
	a, b, c := types.EndpointID("ep-a"), types.EndpointID("ep-b"), types.EndpointID("ep-c")
	f := newFixture(LeastOutstanding, members(a, b, c)...)
	// Free capacity: a = 8-0 = 8, b = 8-4 = 4, c = 8-4 = 4.
	f.setStatus(a, true, 0, 0, 8)
	f.setStatus(b, true, 2, 2, 8)
	f.setStatus(c, true, 4, 0, 8)
	got, err := f.router().RouteBatch(Request{Group: f.group}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 16 {
		t.Fatalf("RouteBatch returned %d placements, want 16", len(got))
	}
	counts := countBy(got)
	if counts[a] != 8 || counts[b] != 4 || counts[c] != 4 {
		t.Fatalf("split %v, want a=8 b=4 c=4", counts)
	}
}

// Round-robin groups split evenly regardless of load.
func TestRouteBatchRoundRobinEven(t *testing.T) {
	a, b := types.EndpointID("ep-a"), types.EndpointID("ep-b")
	f := newFixture(RoundRobin, members(a, b)...)
	f.setStatus(a, true, 9, 0, 2)
	f.setStatus(b, true, 0, 0, 2)
	got, err := f.router().RouteBatch(Request{Group: f.group}, 7)
	if err != nil {
		t.Fatal(err)
	}
	counts := countBy(got)
	if counts[a]+counts[b] != 7 || counts[a] < 3 || counts[b] < 3 {
		t.Fatalf("round-robin split %v, want near-even totaling 7", counts)
	}
}

// A saturated group still spreads the batch by raw capacity instead of
// dumping it on one member.
func TestRouteBatchSaturatedFallsBackToCapacity(t *testing.T) {
	a, b := types.EndpointID("ep-a"), types.EndpointID("ep-b")
	f := newFixture(LeastOutstanding, members(a, b)...)
	f.setStatus(a, true, 50, 0, 6) // free = 6-50 < 0
	f.setStatus(b, true, 50, 0, 2) // free = 2-50 < 0
	got, err := f.router().RouteBatch(Request{Group: f.group}, 8)
	if err != nil {
		t.Fatal(err)
	}
	counts := countBy(got)
	if counts[a] != 6 || counts[b] != 2 {
		t.Fatalf("saturated split %v, want a=6 b=2 (by capacity)", counts)
	}
}

// Batch placements stripe across members instead of running in
// per-member blocks: a mid-batch endpoint failure then hits scattered
// positions, not a contiguous run of the caller's work.
func TestRouteBatchInterleavesMembers(t *testing.T) {
	a, b, c := types.EndpointID("ep-a"), types.EndpointID("ep-b"), types.EndpointID("ep-c")
	f := newFixture(RoundRobin, members(a, b, c)...)
	for _, id := range []types.EndpointID{a, b, c} {
		f.setStatus(id, true, 0, 0, 8)
	}
	got, err := f.router().RouteBatch(Request{Group: f.group}, 12)
	if err != nil {
		t.Fatal(err)
	}
	counts := countBy(got)
	if counts[a] != 4 || counts[b] != 4 || counts[c] != 4 {
		t.Fatalf("split %v, want even 4/4/4", counts)
	}
	// No member may appear twice in a row while others still have
	// quota: the longest run must be 1.
	for i := 1; i < len(got); i++ {
		if got[i] == got[i-1] {
			t.Fatalf("consecutive placements on %s at %d: %v", got[i], i, got)
		}
	}
	// Uneven quotas still stripe: the heavy member fills the tail only
	// after the light members' quotas run dry.
	f2 := newFixture(LeastOutstanding, members(a, b)...)
	f2.setStatus(a, true, 0, 0, 9) // free 9
	f2.setStatus(b, true, 0, 0, 3) // free 3
	got, err = f2.router().RouteBatch(Request{Group: f2.group}, 12)
	if err != nil {
		t.Fatal(err)
	}
	if c := countBy(got); c[a] != 9 || c[b] != 3 {
		t.Fatalf("split %v, want a=9 b=3", c)
	}
	for i := 1; i < 6; i++ { // while both have quota, strict alternation
		if got[i] == got[i-1] {
			t.Fatalf("consecutive placements on %s at %d while both members had quota: %v", got[i], i, got)
		}
	}
}

// Selectors stay hard constraints for batches.
func TestRouteBatchSelector(t *testing.T) {
	a, b := types.EndpointID("ep-a"), types.EndpointID("ep-b")
	f := newFixture(LeastOutstanding, members(a, b)...)
	f.setStatus(a, true, 0, 0, 4)
	f.setStatus(b, true, 0, 0, 4)
	f.labels[b] = map[string]string{"gpu": "a100"}
	got, err := f.router().RouteBatch(Request{Group: f.group, Selector: map[string]string{"gpu": "a100"}}, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range got {
		if id != b {
			t.Fatalf("selector-constrained batch placed on %s", id)
		}
	}
	if _, err := f.router().RouteBatch(Request{Group: f.group, Selector: map[string]string{"gpu": "h100"}}, 5); !errors.Is(err, ErrNoSelectorMatch) {
		t.Fatalf("unsatisfiable selector: %v", err)
	}
}

// --- lease-aware penalties ---

// A member with a high reclaim penalty must lose placement to an
// equally loaded healthy member, and win again once the penalty
// decays away.
func TestPenaltySteersLoadAwarePolicies(t *testing.T) {
	a, b := types.EndpointID("ep-a"), types.EndpointID("ep-b")
	f := newFixture(LeastOutstanding, members(a, b)...)
	f.setStatus(a, true, 0, 0, 4)
	f.setStatus(b, true, 1, 0, 4) // slightly busier but healthy
	r := f.router()
	penalties := map[types.EndpointID]float64{a: 10}
	r.Penalty = func(id types.EndpointID) float64 { return penalties[id] }
	got, err := r.Route(Request{Group: f.group})
	if err != nil || got != b {
		t.Fatalf("penalized member won placement: %s, %v", got, err)
	}
	// Penalty decayed: the tie-break returns to pure backlog.
	penalties[a] = 0
	got, err = r.Route(Request{Group: f.group})
	if err != nil || got != a {
		t.Fatalf("healthy member lost placement after decay: %s, %v", got, err)
	}
}

// Penalties shift batch apportionment too.
func TestPenaltyShrinksBatchShare(t *testing.T) {
	a, b := types.EndpointID("ep-a"), types.EndpointID("ep-b")
	f := newFixture(WeightedQueueDepth, members(a, b)...)
	f.setStatus(a, true, 0, 0, 8)
	f.setStatus(b, true, 0, 0, 8)
	r := f.router()
	r.Penalty = func(id types.EndpointID) float64 {
		if id == a {
			return 4
		}
		return 0
	}
	got, err := r.RouteBatch(Request{Group: f.group}, 12)
	if err != nil {
		t.Fatal(err)
	}
	counts := countBy(got)
	if counts[a] >= counts[b] {
		t.Fatalf("penalized member got %d of 12 vs %d", counts[a], counts[b])
	}
}
