package otlp

import (
	"encoding/json"
	"strconv"

	"funcx/internal/trace"
)

// The OTLP/HTTP JSON wire shapes (trace service ExportTraceServiceRequest),
// hand-modeled after the stable OpenTelemetry trace protocol. Proto3
// JSON maps fixed64 nanosecond timestamps to decimal strings and span
// ids to hex strings — both honored here so any OTLP collector accepts
// the payload. Exported so tests and stub collectors can decode what
// the exporter emits.

// ExportRequest is the POST body of an OTLP/HTTP trace export.
type ExportRequest struct {
	ResourceSpans []ResourceSpans `json:"resourceSpans"`
}

// ResourceSpans groups spans under one emitting resource.
type ResourceSpans struct {
	Resource   Resource     `json:"resource"`
	ScopeSpans []ScopeSpans `json:"scopeSpans"`
}

// Resource identifies the emitting entity (service.name etc.).
type Resource struct {
	Attributes []KeyValue `json:"attributes,omitempty"`
}

// ScopeSpans groups spans under one instrumentation scope.
type ScopeSpans struct {
	Scope Scope  `json:"scope"`
	Spans []Span `json:"spans"`
}

// Scope names the instrumentation that produced the spans.
type Scope struct {
	Name string `json:"name"`
}

// Span kinds (proto enum values) used by this exporter.
const (
	KindInternal = 1
	KindServer   = 2
)

// Span is one OTLP span.
type Span struct {
	TraceID           string     `json:"traceId"`
	SpanID            string     `json:"spanId"`
	ParentSpanID      string     `json:"parentSpanId,omitempty"`
	Name              string     `json:"name"`
	Kind              int        `json:"kind,omitempty"`
	StartTimeUnixNano string     `json:"startTimeUnixNano"`
	EndTimeUnixNano   string     `json:"endTimeUnixNano"`
	Attributes        []KeyValue `json:"attributes,omitempty"`
}

// KeyValue is one OTLP attribute.
type KeyValue struct {
	Key   string   `json:"key"`
	Value AnyValue `json:"value"`
}

// AnyValue is the OTLP attribute value union (string-only here).
type AnyValue struct {
	StringValue string `json:"stringValue"`
}

func str(key, val string) KeyValue {
	return KeyValue{Key: key, Value: AnyValue{StringValue: val}}
}

func nanos(n int64) string {
	return strconv.FormatInt(n, 10)
}

// Spans converts one completed timeline into its OTLP span set: a
// root "funcx.task" span covering received→published, plus one child
// span per decomposed stage laid end to end across the root's window
// (the stages partition the total exactly — see trace.Decompose).
// ok is false when the timeline is missing terminal stamps.
func Spans(tl *trace.Timeline, shardID string) ([]Span, bool) {
	d, ok := trace.Decompose(tl)
	if !ok {
		return nil, false
	}
	traceID := trace.TraceID(tl.TaskID, tl.DAGID)
	rootID := trace.SpanID(string(tl.TaskID))
	start := tl.Start.UnixNano()

	attrs := []KeyValue{
		str("funcx.task_id", string(tl.TaskID)),
		str("funcx.endpoint", string(tl.Endpoint)),
	}
	if tl.Function != "" {
		attrs = append(attrs, str("funcx.function", string(tl.Function)))
	}
	if tl.Group != "" {
		attrs = append(attrs, str("funcx.group", string(tl.Group)))
	}
	if tl.DAGID != "" {
		attrs = append(attrs, str("funcx.dag_id", string(tl.DAGID)))
	}
	if shardID != "" {
		attrs = append(attrs, str("funcx.shard", shardID))
	}

	out := make([]Span, 0, 7)
	out = append(out, Span{
		TraceID:           traceID,
		SpanID:            rootID,
		Name:              "funcx.task",
		Kind:              KindServer,
		StartTimeUnixNano: nanos(start),
		EndTimeUnixNano:   nanos(start + int64(d.Total)),
		Attributes:        attrs,
	})
	cursor := start
	for _, st := range d.Stages() {
		end := cursor + int64(st.D)
		out = append(out, Span{
			TraceID:           traceID,
			SpanID:            trace.SpanID(string(tl.TaskID) + "/" + st.Name),
			ParentSpanID:      rootID,
			Name:              "funcx." + st.Name,
			Kind:              KindInternal,
			StartTimeUnixNano: nanos(cursor),
			EndTimeUnixNano:   nanos(end),
			Attributes:        []KeyValue{str("funcx.stage", st.Name)},
		})
		cursor = end
	}
	return out, true
}

// Payload builds the JSON export body for a batch of timelines and
// returns it with the number of spans it carries (0 when nothing in
// the batch decomposes).
func Payload(batch []*trace.Timeline, serviceName, shardID string) ([]byte, int) {
	spans := make([]Span, 0, len(batch)*7)
	for _, tl := range batch {
		if s, ok := Spans(tl, shardID); ok {
			spans = append(spans, s...)
		}
	}
	if len(spans) == 0 {
		return nil, 0
	}
	res := Resource{Attributes: []KeyValue{str("service.name", serviceName)}}
	if shardID != "" {
		res.Attributes = append(res.Attributes, str("funcx.shard", shardID))
	}
	req := ExportRequest{ResourceSpans: []ResourceSpans{{
		Resource: res,
		ScopeSpans: []ScopeSpans{{
			Scope: Scope{Name: "funcx/internal/otlp"},
			Spans: spans,
		}},
	}}}
	body, err := json.Marshal(req)
	if err != nil {
		// Statically impossible for these types; keep the exporter
		// total rather than panicking on the export goroutine.
		return nil, 0
	}
	return body, len(spans)
}
