package otlp

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"funcx/internal/trace"
	"funcx/internal/types"
)

// testTimeline builds a completed timeline with every lifecycle stage
// stamped at 1ms intervals (received at 0, published at 5ms).
func testTimeline(id types.TaskID, dag types.DAGID) *trace.Timeline {
	tl := &trace.Timeline{
		TaskID:   id,
		Endpoint: "ep-1",
		Group:    "group-1",
		Function: "fn-1",
		DAGID:    dag,
		Start:    time.Unix(1700000000, 0),
		Done:     true,
	}
	for i, s := range []trace.Stage{
		trace.StageReceived, trace.StageQueued, trace.StageDispatched,
		trace.StageRunning, trace.StageResult, trace.StagePublished,
	} {
		tl.Stamps = append(tl.Stamps, trace.Stamp{Stage: s, Offset: time.Duration(i) * time.Millisecond})
	}
	return tl
}

func TestSpansStructure(t *testing.T) {
	tl := testTimeline("task-1", "")
	spans, ok := Spans(tl, "shard-0")
	if !ok {
		t.Fatal("Spans: complete timeline did not decompose")
	}
	if len(spans) != 7 {
		t.Fatalf("got %d spans, want 7 (root + 6 stages)", len(spans))
	}
	root := spans[0]
	if root.Name != "funcx.task" || root.Kind != KindServer {
		t.Fatalf("root span: name=%q kind=%d", root.Name, root.Kind)
	}
	if root.ParentSpanID != "" {
		t.Fatalf("root span has parent %q", root.ParentSpanID)
	}
	wantTrace := trace.TraceID("task-1", "")
	if root.TraceID != wantTrace {
		t.Fatalf("root trace id %q, want %q", root.TraceID, wantTrace)
	}
	attrs := map[string]string{}
	for _, kv := range root.Attributes {
		attrs[kv.Key] = kv.Value.StringValue
	}
	for key, want := range map[string]string{
		"funcx.task_id":  "task-1",
		"funcx.endpoint": "ep-1",
		"funcx.function": "fn-1",
		"funcx.group":    "group-1",
		"funcx.shard":    "shard-0",
	} {
		if attrs[key] != want {
			t.Errorf("root attr %s = %q, want %q", key, attrs[key], want)
		}
	}
	if _, has := attrs["funcx.dag_id"]; has {
		t.Error("root span of a non-DAG task carries funcx.dag_id")
	}

	wantStages := []string{"submit", "queue", "dispatch", "execute", "return", "publish"}
	cursor := root.StartTimeUnixNano
	for i, sp := range spans[1:] {
		if sp.Name != "funcx."+wantStages[i] {
			t.Errorf("child %d: name %q, want funcx.%s", i, sp.Name, wantStages[i])
		}
		if sp.Kind != KindInternal {
			t.Errorf("child %d: kind %d, want %d", i, sp.Kind, KindInternal)
		}
		if sp.ParentSpanID != root.SpanID {
			t.Errorf("child %d: parent %q, want root %q", i, sp.ParentSpanID, root.SpanID)
		}
		if sp.TraceID != root.TraceID {
			t.Errorf("child %d: trace id %q differs from root", i, sp.TraceID)
		}
		if sp.StartTimeUnixNano != cursor {
			t.Errorf("child %d: starts at %s, want previous end %s", i, sp.StartTimeUnixNano, cursor)
		}
		cursor = sp.EndTimeUnixNano
	}
	// The stage spans tile the root window exactly.
	if cursor != root.EndTimeUnixNano {
		t.Errorf("last child ends at %s, root ends at %s", cursor, root.EndTimeUnixNano)
	}
}

func TestSpansDAGLinkage(t *testing.T) {
	a, okA := Spans(testTimeline("node-a", "dag-1"), "")
	b, okB := Spans(testTimeline("node-b", "dag-1"), "")
	if !okA || !okB {
		t.Fatal("DAG timelines did not decompose")
	}
	if a[0].TraceID != b[0].TraceID {
		t.Fatalf("nodes of one DAG got different trace ids: %q vs %q", a[0].TraceID, b[0].TraceID)
	}
	if a[0].TraceID != trace.TraceID("node-a", "dag-1") {
		t.Fatalf("trace id %q not derived from the graph id", a[0].TraceID)
	}
	if a[0].SpanID == b[0].SpanID {
		t.Fatal("distinct tasks share a span id")
	}
	other, _ := Spans(testTimeline("node-a", "dag-2"), "")
	if other[0].TraceID == a[0].TraceID {
		t.Fatal("different DAGs share a trace id")
	}
}

func TestSpansIncompleteTimeline(t *testing.T) {
	tl := &trace.Timeline{TaskID: "t-1", Start: time.Unix(1700000000, 0)}
	tl.Stamps = []trace.Stamp{{Stage: trace.StageReceived}}
	if _, ok := Spans(tl, ""); ok {
		t.Fatal("Spans: in-flight timeline decomposed")
	}
	if body, n := Payload([]*trace.Timeline{tl}, "svc", ""); body != nil || n != 0 {
		t.Fatalf("Payload of undecomposable batch: %d spans", n)
	}
}

// TestExporterEndToEnd drives two DAG-linked timelines through a real
// exporter into a stub collector and reassembles the export: both
// tasks' spans must land under one trace id, inside a well-formed
// OTLP envelope.
func TestExporterEndToEnd(t *testing.T) {
	var mu sync.Mutex
	var reqs []ExportRequest
	collector := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/traces" {
			t.Errorf("collector got path %s", r.URL.Path)
		}
		if ct := r.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("collector got Content-Type %s", ct)
		}
		var req ExportRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("collector: bad body: %v", err)
		}
		mu.Lock()
		reqs = append(reqs, req)
		mu.Unlock()
	}))
	defer collector.Close()

	e := New(Config{Endpoint: collector.URL, ServiceName: "svc-under-test", ShardID: "shard-7"})
	e.Enqueue(testTimeline("node-a", "dag-9"))
	e.Enqueue(testTimeline("node-b", "dag-9"))
	e.Close() // drains and flushes

	mu.Lock()
	defer mu.Unlock()
	spans := []Span{}
	for _, req := range reqs {
		for _, rs := range req.ResourceSpans {
			attrs := map[string]string{}
			for _, kv := range rs.Resource.Attributes {
				attrs[kv.Key] = kv.Value.StringValue
			}
			if attrs["service.name"] != "svc-under-test" || attrs["funcx.shard"] != "shard-7" {
				t.Errorf("resource attributes %v", attrs)
			}
			for _, ss := range rs.ScopeSpans {
				if ss.Scope.Name != "funcx/internal/otlp" {
					t.Errorf("scope %q", ss.Scope.Name)
				}
				spans = append(spans, ss.Spans...)
			}
		}
	}
	if len(spans) != 14 {
		t.Fatalf("collector received %d spans, want 14 (2 tasks x 7)", len(spans))
	}
	traces := map[string]int{}
	roots := 0
	for _, sp := range spans {
		traces[sp.TraceID]++
		if sp.ParentSpanID == "" {
			roots++
		}
	}
	if len(traces) != 1 {
		t.Fatalf("DAG exported as %d traces, want 1: %v", len(traces), traces)
	}
	if roots != 2 {
		t.Fatalf("%d root spans, want 2", roots)
	}
	if st := e.Stats(); st.Exported != 14 || st.Dropped != 0 || st.ExportErrors != 0 {
		t.Fatalf("stats after clean export: %+v", st)
	}
}

// TestEnqueueDropOldest wedges the collector and floods a tiny queue:
// Enqueue must stay non-blocking (drop-oldest), and the losses must be
// counted.
func TestEnqueueDropOldest(t *testing.T) {
	release := make(chan struct{})
	collector := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	defer collector.Close()
	defer close(release)

	e := New(Config{
		Endpoint:  collector.URL,
		Queue:     4,
		BatchSize: 1,
		Client:    &http.Client{Timeout: 100 * time.Millisecond},
	})
	const n = 64
	start := time.Now()
	for i := 0; i < n; i++ {
		e.Enqueue(testTimeline(types.TaskID("flood-"+string(rune('a'+i%26))), ""))
	}
	elapsed := time.Since(start)
	// 64 enqueues against a wedged collector must not wait on HTTP:
	// anything near the client timeout means Enqueue blocked.
	if elapsed > 50*time.Millisecond {
		t.Fatalf("flooding a wedged exporter took %v; Enqueue blocked", elapsed)
	}
	if st := e.Stats(); st.Dropped == 0 {
		t.Fatalf("queue of 4 absorbed %d timelines without drops: %+v", n, st)
	}
	e.Close()
}

func TestNilExporterSafe(t *testing.T) {
	var e *Exporter
	e.Enqueue(testTimeline("t", "")) // must not panic
	if st := e.Stats(); st != (Stats{}) {
		t.Fatalf("nil exporter stats %+v", st)
	}
	e.Close()
}
