// Package otlp is a zero-dependency OTLP/HTTP-JSON trace exporter:
// completed trace.Timelines convert to OpenTelemetry spans — one root
// span per task plus one child span per decomposed lifecycle stage —
// POSTed in batches to an OTLP collector's /v1/traces endpoint as
// protobuf-JSON (the OTLP/HTTP JSON encoding), built by hand against
// the stable trace protocol so the repo's no-external-deps discipline
// holds (same stance as internal/promtext and internal/analysis).
//
// The exporter is strictly off the task lifecycle hot path: Enqueue
// never blocks (a bounded drop-oldest queue absorbs bursts and a
// wedged collector), and all batching, encoding, and HTTP happen on
// the exporter's own goroutine. DAG nodes share a graph-id-derived
// trace id (trace.TraceID), so a sampled workflow reassembles into a
// single distributed trace in any OTLP backend.
package otlp

import (
	"bytes"
	"context"
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"funcx/internal/trace"
)

// Config parameterizes an Exporter. Zero values select defaults.
type Config struct {
	// Endpoint is the collector's base URL; spans POST to
	// Endpoint + "/v1/traces".
	Endpoint string
	// Queue bounds the completed-timeline queue (default 1024). When
	// full, the oldest queued timeline is dropped to admit the new one.
	Queue int
	// BatchSize is the max timelines per export POST (default 64).
	BatchSize int
	// FlushInterval bounds how long a partial batch waits (default 2s).
	FlushInterval time.Duration
	// ServiceName is the OTLP resource service.name (default
	// "funcx-service").
	ServiceName string
	// ShardID, when set, is attached as the funcx.shard resource and
	// root-span attribute.
	ShardID string
	// Client is the HTTP client for exports (default: 5s timeout).
	Client *http.Client
	// Logger receives export-failure warnings (nil = silent).
	Logger *slog.Logger
}

// Stats is a point-in-time snapshot of exporter counters.
type Stats struct {
	// Exported counts spans delivered in accepted batches.
	Exported int64
	// Dropped counts timelines lost: displaced from the full queue or
	// carried by a batch the collector refused.
	Dropped int64
	// ExportErrors counts batches that failed to reach the collector
	// (transport error or non-2xx status).
	ExportErrors int64
	// QueueDepth is the live number of queued timelines.
	QueueDepth int
}

// Exporter ships completed timelines to an OTLP collector in the
// background. Create with New; feed via Enqueue (typically wired as
// trace.Collector.OnFinish); stop with Close.
type Exporter struct {
	cfg    Config
	queue  chan *trace.Timeline
	cancel context.CancelFunc
	ctx    context.Context
	done   chan struct{}

	exported atomic.Int64
	dropped  atomic.Int64
	errors   atomic.Int64
}

// New starts an exporter's background goroutine and returns it.
func New(cfg Config) *Exporter {
	if cfg.Queue <= 0 {
		cfg.Queue = 1024
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 64
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = 2 * time.Second
	}
	if cfg.ServiceName == "" {
		cfg.ServiceName = "funcx-service"
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 5 * time.Second}
	}
	e := &Exporter{
		cfg:   cfg,
		queue: make(chan *trace.Timeline, cfg.Queue),
		done:  make(chan struct{}),
	}
	e.ctx, e.cancel = context.WithCancel(context.Background())
	go e.run()
	return e
}

// Enqueue hands a completed timeline to the exporter without ever
// blocking: when the queue is full the oldest queued timeline is
// dropped to make room, and if racing producers refill the freed slot
// the new timeline is dropped instead. Safe to call from the task
// retirement path — a wedged collector can only ever cost spans,
// never task latency.
func (e *Exporter) Enqueue(tl *trace.Timeline) {
	if e == nil || tl == nil {
		return
	}
	select {
	case e.queue <- tl:
		return
	default:
	}
	// Full: displace the oldest entry, then retry once.
	select {
	case <-e.queue:
		e.dropped.Add(1)
	default:
	}
	select {
	case e.queue <- tl:
	default:
		e.dropped.Add(1)
	}
}

// Stats snapshots the exporter's counters.
func (e *Exporter) Stats() Stats {
	if e == nil {
		return Stats{}
	}
	return Stats{
		Exported:     e.exported.Load(),
		Dropped:      e.dropped.Load(),
		ExportErrors: e.errors.Load(),
		QueueDepth:   len(e.queue),
	}
}

// Close stops the exporter after draining and flushing whatever is
// already queued. Blocks until the background goroutine exits.
func (e *Exporter) Close() {
	if e == nil {
		return
	}
	e.cancel()
	<-e.done
}

// run is the export loop: batch up to BatchSize timelines, flush on
// size or FlushInterval, drain on shutdown.
func (e *Exporter) run() {
	defer close(e.done)
	ticker := time.NewTicker(e.cfg.FlushInterval)
	defer ticker.Stop()
	batch := make([]*trace.Timeline, 0, e.cfg.BatchSize)
	flush := func() {
		if len(batch) > 0 {
			e.export(batch)
			batch = batch[:0]
		}
	}
	for {
		select {
		case tl := <-e.queue:
			batch = append(batch, tl)
			if len(batch) >= e.cfg.BatchSize {
				flush()
			}
		case <-ticker.C:
			flush()
		case <-e.ctx.Done():
			for {
				select {
				case tl := <-e.queue:
					batch = append(batch, tl)
					if len(batch) >= e.cfg.BatchSize {
						flush()
					}
				default:
					flush()
					return
				}
			}
		}
	}
}

// export POSTs one batch. Failures count every carried timeline as
// dropped — the exporter never retries (the collector is expected to
// sit behind its own durable pipeline; task telemetry is best-effort).
func (e *Exporter) export(batch []*trace.Timeline) {
	body, spans := Payload(batch, e.cfg.ServiceName, e.cfg.ShardID)
	if spans == 0 {
		return
	}
	// Detached from e.ctx so the shutdown drain can still flush; the
	// client timeout bounds it regardless.
	req, err := http.NewRequest(http.MethodPost, e.cfg.Endpoint+"/v1/traces", bytes.NewReader(body))
	if err != nil {
		e.errors.Add(1)
		e.dropped.Add(int64(len(batch)))
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := e.cfg.Client.Do(req)
	if err != nil {
		e.exportFailed(len(batch), err.Error())
		return
	}
	resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		e.exportFailed(len(batch), "collector status "+strconv.Itoa(resp.StatusCode))
		return
	}
	e.exported.Add(int64(spans))
}

func (e *Exporter) exportFailed(timelines int, reason string) {
	e.errors.Add(1)
	e.dropped.Add(int64(timelines))
	if e.cfg.Logger != nil {
		e.cfg.Logger.Warn("otlp export failed",
			"endpoint", e.cfg.Endpoint, "timelines", timelines, "reason", reason)
	}
}
