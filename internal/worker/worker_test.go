package worker

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"funcx/internal/container"
	"funcx/internal/fx"
	"funcx/internal/serial"
	"funcx/internal/types"
)

func newTestWorker(t *testing.T) (*Worker, *fx.Runtime, map[string]string, chan Outcome) {
	t.Helper()
	rt := fx.NewRuntime()
	rt.SleepScale = 0.001
	hashes := rt.RegisterBuiltins()
	results := make(chan Outcome, 16)
	ctr := container.NewRuntime(container.Config{System: "ec2", TimeScale: 0})
	inst := ctr.Acquire(types.ContainerSpec{})
	w := New("w-1", inst, rt, results)
	return w, rt, hashes, results
}

func TestExecuteSuccess(t *testing.T) {
	w, _, hashes, _ := newTestWorker(t)
	payload, _ := serial.Serialize("ping")
	res := w.Execute(context.Background(), &types.Task{
		ID: "t1", BodyHash: hashes["echo"], Payload: payload,
	})
	if res.Failed() {
		t.Fatalf("echo failed: %s", res.Err)
	}
	if string(res.Output) != string(payload) {
		t.Fatalf("output = %q", res.Output)
	}
	if res.TaskID != "t1" || res.WorkerID != "w-1" {
		t.Fatalf("identity fields = %+v", res)
	}
	if res.Timing.TW <= 0 {
		t.Fatal("TW not recorded")
	}
}

func TestExecuteUnknownFunction(t *testing.T) {
	w, _, _, _ := newTestWorker(t)
	res := w.Execute(context.Background(), &types.Task{ID: "t1", BodyHash: "nope"})
	if !res.Failed() {
		t.Fatal("unknown function succeeded")
	}
	if err := serial.DecodeError([]byte(res.Err)); !strings.Contains(err.Error(), "unknown function") {
		t.Fatalf("error = %v", err)
	}
}

func TestExecuteFunctionError(t *testing.T) {
	w, _, hashes, _ := newTestWorker(t)
	res := w.Execute(context.Background(), &types.Task{ID: "t1", BodyHash: hashes["fail"]})
	if !res.Failed() {
		t.Fatal("fail builtin succeeded")
	}
}

func TestExecuteRecoversPanics(t *testing.T) {
	w, rt, _, _ := newTestWorker(t)
	hash := rt.Register([]byte("def panics(): ..."), func(ctx context.Context, p []byte) ([]byte, error) {
		panic("function panicked")
	})
	res := w.Execute(context.Background(), &types.Task{ID: "t1", BodyHash: hash})
	if !res.Failed() {
		t.Fatal("panicking function reported success")
	}
	if !strings.Contains(res.Err, "function panicked") {
		t.Fatalf("panic message lost: %s", res.Err)
	}
}

func TestExecuteBatch(t *testing.T) {
	w, _, hashes, _ := newTestWorker(t)
	const n = 10
	parts := make([]serial.Part, n)
	for i := range parts {
		body, _ := serial.Serialize(fmt.Sprintf("item-%d", i))
		parts[i] = serial.Part{Tag: fmt.Sprintf("i%d", i), Body: body}
	}
	res := w.Execute(context.Background(), &types.Task{
		ID: "t1", BodyHash: hashes["echo"], Payload: serial.Pack(parts...), BatchN: n,
	})
	if res.Failed() {
		t.Fatalf("batch failed: %s", res.Err)
	}
	outs, err := serial.Unpack(res.Output)
	if err != nil || len(outs) != n {
		t.Fatalf("outputs = %d, %v", len(outs), err)
	}
	var s string
	if _, err := serial.Deserialize(outs[3].Body, &s); err != nil || s != "item-3" {
		t.Fatalf("item 3 = %q, %v", s, err)
	}
}

func TestExecuteBatchCountMismatch(t *testing.T) {
	w, _, hashes, _ := newTestWorker(t)
	body, _ := serial.Serialize("only-one")
	res := w.Execute(context.Background(), &types.Task{
		ID: "t1", BodyHash: hashes["echo"],
		Payload: serial.Pack(serial.Part{Tag: "i0", Body: body}),
		BatchN:  5,
	})
	if !res.Failed() {
		t.Fatal("batch count mismatch accepted")
	}
}

func TestWorkerLoopProcessesSubmissions(t *testing.T) {
	w, _, hashes, results := newTestWorker(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w.Start(ctx)
	defer w.Stop()

	payload, _ := serial.Serialize("x")
	for i := 0; i < 5; i++ {
		err := w.Submit(ctx, &types.Task{ID: types.TaskID(fmt.Sprint(i)), BodyHash: hashes["echo"], Payload: payload})
		if err != nil {
			t.Fatal(err)
		}
		select {
		case out := <-results:
			if out.Result.Failed() {
				t.Fatalf("task %d failed: %s", i, out.Result.Err)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("task %d result missing", i)
		}
	}
}

func TestBusyReflectsQueuedWork(t *testing.T) {
	w, _, hashes, results := newTestWorker(t)
	ctx := context.Background()
	w.Start(ctx)
	defer w.Stop()
	if w.Busy() {
		t.Fatal("fresh worker busy")
	}
	// Submit a sleeping task; the worker must report busy while the
	// task is queued or running.
	if err := w.Submit(ctx, &types.Task{ID: "t", BodyHash: hashes["sleep"], Payload: fx.SleepArgs(50)}); err != nil {
		t.Fatal(err)
	}
	if !w.Busy() {
		t.Fatal("worker with submitted task not busy")
	}
	<-results
	// Draining may race the busy flag clear by a hair.
	deadline := time.Now().Add(time.Second)
	for w.Busy() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if w.Busy() {
		t.Fatal("worker busy after completion")
	}
}

func TestTrySubmitRespectsSlot(t *testing.T) {
	w, _, hashes, results := newTestWorker(t)
	w.Start(context.Background())
	defer w.Stop()
	payload := fx.SleepArgs(100) // long task (scaled 100ms)
	if !w.TrySubmit(&types.Task{ID: "a", BodyHash: hashes["sleep"], Payload: payload}) {
		t.Fatal("first TrySubmit refused")
	}
	// Slot may briefly hold one more; a third must be refused.
	ok2 := w.TrySubmit(&types.Task{ID: "b", BodyHash: hashes["sleep"], Payload: payload})
	if ok2 {
		if w.TrySubmit(&types.Task{ID: "c", BodyHash: hashes["sleep"], Payload: payload}) {
			t.Fatal("third TrySubmit accepted: slot unbounded")
		}
	}
	// Drain.
	want := 1
	if ok2 {
		want = 2
	}
	for i := 0; i < want; i++ {
		select {
		case <-results:
		case <-time.After(5 * time.Second):
			t.Fatal("task lost")
		}
	}
}

func TestStopEndsLoop(t *testing.T) {
	w, _, hashes, _ := newTestWorker(t)
	ctx := context.Background()
	w.Start(ctx)
	w.Stop()
	if !w.Stopped() {
		t.Fatal("Stopped() false after Stop")
	}
	// Submissions to a stopped worker eventually fail: the loop may
	// race Stop and drain at most one already-accepted task, and the
	// one-slot buffer can hold one more, but no steady stream can be
	// accepted.
	payload, _ := serial.Serialize("x")
	failed := false
	for i := 0; i < 3 && !failed; i++ {
		ctx2, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
		if err := w.Submit(ctx2, &types.Task{ID: types.TaskID([]byte{byte('a' + i)}), BodyHash: hashes["echo"], Payload: payload}); err != nil {
			failed = true
		}
		cancel()
	}
	if !failed {
		t.Fatal("stopped worker kept accepting submissions")
	}
}
