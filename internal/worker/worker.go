// Package worker implements the funcX worker (paper §4.3): a process
// pinned inside one container that executes a single task at a time.
// Workers have one responsibility, so they use blocking communication —
// here, unbuffered receives from the manager's dispatch channel — and
// return serialized results through the manager.
package worker

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"funcx/internal/container"
	"funcx/internal/fx"
	"funcx/internal/serial"
	"funcx/internal/types"
)

// Outcome couples a finished task with its result for the manager.
type Outcome struct {
	Task   *types.Task
	Result *types.Result
}

// Worker executes tasks inside one container instance.
type Worker struct {
	ID        types.WorkerID
	Container *container.Instance

	// OnStart, when set before Start, is invoked the moment the worker
	// picks a task up, before execution begins — the source of the
	// TaskRunning signal the manager relays toward the service.
	OnStart func(*types.Task)

	rt      *fx.Runtime
	tasks   chan *types.Task
	results chan<- Outcome

	// queued counts tasks accepted but not yet picked up by the loop
	// (the task channel holds one slot so a submission to a freshly
	// deployed worker never races its loop startup).
	queued  atomic.Int32
	busy    atomic.Bool
	done    chan struct{}
	started atomic.Bool
}

// New creates a worker bound to a container instance and function
// runtime. Results are delivered on the shared results channel.
func New(id types.WorkerID, inst *container.Instance, rt *fx.Runtime, results chan<- Outcome) *Worker {
	return &Worker{
		ID:        id,
		Container: inst,
		rt:        rt,
		tasks:     make(chan *types.Task, 1),
		results:   results,
		done:      make(chan struct{}),
	}
}

// Start launches the worker loop. It is idempotent.
func (w *Worker) Start(ctx context.Context) {
	if !w.started.CompareAndSwap(false, true) {
		return
	}
	go w.loop(ctx)
}

// Submit hands a task to the worker. It blocks until the worker's
// task slot frees (workers run one task at a time), or fails if the
// worker has stopped or the context is done.
func (w *Worker) Submit(ctx context.Context, t *types.Task) error {
	select {
	case w.tasks <- t:
		w.queued.Add(1)
		return nil
	case <-w.done:
		return fmt.Errorf("worker %s: stopped", w.ID)
	case <-ctx.Done():
		return ctx.Err()
	}
}

// TrySubmit hands a task to the worker only if its task slot is free.
func (w *Worker) TrySubmit(t *types.Task) bool {
	select {
	case w.tasks <- t:
		w.queued.Add(1)
		return true
	default:
		return false
	}
}

// Busy reports whether the worker is executing or holds a queued task.
func (w *Worker) Busy() bool { return w.busy.Load() || w.queued.Load() > 0 }

// Stop terminates the worker after any in-flight task completes.
func (w *Worker) Stop() {
	select {
	case <-w.done:
	default:
		close(w.done)
	}
}

// Stopped reports whether Stop has been called.
func (w *Worker) Stopped() bool {
	select {
	case <-w.done:
		return true
	default:
		return false
	}
}

func (w *Worker) loop(ctx context.Context) {
	for {
		select {
		case t := <-w.tasks:
			w.busy.Store(true)
			w.queued.Add(-1)
			if w.OnStart != nil {
				w.OnStart(t)
			}
			res := w.Execute(ctx, t)
			w.busy.Store(false)
			select {
			case w.results <- Outcome{Task: t, Result: res}:
			case <-ctx.Done():
				return
			}
		case <-w.done:
			return
		case <-ctx.Done():
			return
		}
	}
}

// Execute runs one task synchronously: deserialize, look up the
// function by body hash, run it (looping over packed arguments for
// batch tasks), and serialize the outcome. It never panics: function
// panics become failed results, mirroring how a Python exception is
// caught and shipped back as a traceback.
func (w *Worker) Execute(ctx context.Context, t *types.Task) *types.Result {
	start := time.Now()
	res := &types.Result{TaskID: t.ID, WorkerID: w.ID}
	output, err := w.execute(ctx, t)
	res.Completed = time.Now()
	//funcx:ignore clockdiscipline Completed is stamped one line above on this machine; both ends of the Sub share a clock and the monotonic reading is intact.
	res.Timing.TW = res.Completed.Sub(start)
	if t.Traced() {
		// Worker stage delta for the sampled task's timeline, measured
		// on this machine's clock only (trace deltas never carry
		// wall-clock timestamps across machines).
		res.Trace = &types.TraceDeltas{Exec: res.Timing.TW}
	}
	if err != nil {
		res.Err = string(serial.EncodeError(err, string(t.ID)))
		return res
	}
	res.Output = output
	return res
}

func (w *Worker) execute(ctx context.Context, t *types.Task) (out []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &serial.Traceback{
				Message: fmt.Sprint(r),
				Frames:  []string{"worker.Execute"},
				TaskID:  string(t.ID),
			}
		}
	}()
	fn, err := w.rt.Lookup(t.BodyHash)
	if err != nil {
		return nil, err
	}
	if t.BatchN > 0 {
		return w.executeBatch(ctx, t, fn)
	}
	return fn(ctx, t.Payload)
}

// executeBatch loops the function over the packed argument buffers of
// a user-driven batch task (fmap, §4.7) and packs the outputs.
func (w *Worker) executeBatch(ctx context.Context, t *types.Task, fn fx.Func) ([]byte, error) {
	parts, err := serial.Unpack(t.Payload)
	if err != nil {
		return nil, fmt.Errorf("worker: unpacking batch: %w", err)
	}
	if len(parts) != t.BatchN {
		return nil, fmt.Errorf("worker: batch declares %d items, payload has %d", t.BatchN, len(parts))
	}
	outs := make([]serial.Part, len(parts))
	for i, p := range parts {
		o, err := fn(ctx, p.Body)
		if err != nil {
			return nil, fmt.Errorf("worker: batch item %d: %w", i, err)
		}
		outs[i] = serial.Part{Tag: p.Tag, Body: o}
	}
	return serial.Pack(outs...), nil
}
