package transport

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// networks lists both implementations; every behavioral test runs
// against each.
var networks = []string{"inproc", "tcp"}

func pair(t *testing.T, network string) (server Conn, client Conn) {
	t.Helper()
	ln, err := Listen(network, "")
	if err != nil {
		t.Fatalf("Listen(%s): %v", network, err)
	}
	t.Cleanup(func() { ln.Close() })
	accepted := make(chan Conn, 1)
	errc := make(chan error, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			errc <- err
			return
		}
		accepted <- c
	}()
	client, err = Dial(network, ln.Addr(), "client-7")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	select {
	case server = <-accepted:
	case err := <-errc:
		t.Fatalf("Accept: %v", err)
	case <-time.After(2 * time.Second):
		t.Fatal("Accept timed out")
	}
	t.Cleanup(func() { server.Close(); client.Close() })
	return server, client
}

func TestIdentityHandshake(t *testing.T) {
	for _, network := range networks {
		t.Run(network, func(t *testing.T) {
			server, _ := pair(t, network)
			if got := server.RemoteIdentity(); got != "client-7" {
				t.Fatalf("server sees identity %q, want client-7", got)
			}
		})
	}
}

func TestSendRecvBothDirections(t *testing.T) {
	for _, network := range networks {
		t.Run(network, func(t *testing.T) {
			server, client := pair(t, network)
			msg := Message{Type: MsgTask, Payload: []byte("payload-1")}
			if err := client.Send(msg); err != nil {
				t.Fatalf("client Send: %v", err)
			}
			got, err := server.Recv(time.Second)
			if err != nil || got.Type != MsgTask || !bytes.Equal(got.Payload, msg.Payload) {
				t.Fatalf("server Recv = %+v, %v", got, err)
			}
			reply := Message{Type: MsgResult, Payload: []byte("ok")}
			if err := server.Send(reply); err != nil {
				t.Fatalf("server Send: %v", err)
			}
			got, err = client.Recv(time.Second)
			if err != nil || got.Type != MsgResult {
				t.Fatalf("client Recv = %+v, %v", got, err)
			}
		})
	}
}

func TestRecvTimeout(t *testing.T) {
	for _, network := range networks {
		t.Run(network, func(t *testing.T) {
			_, client := pair(t, network)
			start := time.Now()
			_, err := client.Recv(30 * time.Millisecond)
			if !errors.Is(err, ErrTimeout) {
				t.Fatalf("err = %v, want ErrTimeout", err)
			}
			if time.Since(start) < 25*time.Millisecond {
				t.Fatal("returned before timeout")
			}
		})
	}
}

func TestRecvAfterPeerClose(t *testing.T) {
	for _, network := range networks {
		t.Run(network, func(t *testing.T) {
			server, client := pair(t, network)
			server.Close()
			// Eventually the client sees ErrClosed (in-proc may first
			// drain buffered messages; there are none here).
			deadline := time.Now().Add(time.Second)
			for time.Now().Before(deadline) {
				_, err := client.Recv(50 * time.Millisecond)
				if errors.Is(err, ErrClosed) {
					return
				}
			}
			t.Fatal("client never observed close")
		})
	}
}

func TestEmptyPayload(t *testing.T) {
	for _, network := range networks {
		t.Run(network, func(t *testing.T) {
			server, client := pair(t, network)
			if err := client.Send(Message{Type: MsgHeartbeat}); err != nil {
				t.Fatal(err)
			}
			got, err := server.Recv(time.Second)
			if err != nil || got.Type != MsgHeartbeat || len(got.Payload) != 0 {
				t.Fatalf("Recv = %+v, %v", got, err)
			}
		})
	}
}

func TestConcurrentSenders(t *testing.T) {
	for _, network := range networks {
		t.Run(network, func(t *testing.T) {
			server, client := pair(t, network)
			const senders, perSender = 4, 50
			var wg sync.WaitGroup
			for s := 0; s < senders; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					for i := 0; i < perSender; i++ {
						payload := fmt.Appendf(nil, "%d:%d", s, i)
						if err := client.Send(Message{Type: MsgTask, Payload: payload}); err != nil {
							t.Error(err)
							return
						}
					}
				}(s)
			}
			seen := map[string]bool{}
			for i := 0; i < senders*perSender; i++ {
				msg, err := server.Recv(2 * time.Second)
				if err != nil {
					t.Fatalf("Recv %d: %v", i, err)
				}
				key := string(msg.Payload)
				if seen[key] {
					t.Fatalf("duplicate frame %q", key)
				}
				seen[key] = true
			}
			wg.Wait()
		})
	}
}

func TestFrameRoundTripProperty(t *testing.T) {
	server, client := pair(t, "tcp")
	prop := func(tp uint8, payload []byte) bool {
		if tp == 0 {
			tp = 1
		}
		msg := Message{Type: MsgType(tp), Payload: payload}
		if err := client.Send(msg); err != nil {
			return false
		}
		got, err := server.Recv(2 * time.Second)
		return err == nil && got.Type == msg.Type && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestListenerCloseUnblocksAccept(t *testing.T) {
	for _, network := range networks {
		t.Run(network, func(t *testing.T) {
			ln, err := Listen(network, "")
			if err != nil {
				t.Fatal(err)
			}
			done := make(chan error, 1)
			go func() {
				_, err := ln.Accept()
				done <- err
			}()
			time.Sleep(10 * time.Millisecond)
			ln.Close()
			select {
			case err := <-done:
				if !errors.Is(err, ErrClosed) {
					t.Fatalf("Accept = %v, want ErrClosed", err)
				}
			case <-time.After(time.Second):
				t.Fatal("Accept not unblocked")
			}
		})
	}
}

func TestInprocAddressReuse(t *testing.T) {
	ln, err := Listen("inproc", "fixed-name")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Listen("inproc", "fixed-name"); err == nil {
		t.Fatal("double bind succeeded")
	}
	ln.Close()
	ln2, err := Listen("inproc", "fixed-name")
	if err != nil {
		t.Fatalf("rebind after close: %v", err)
	}
	ln2.Close()
}

func TestDialUnknownInproc(t *testing.T) {
	if _, err := Dial("inproc", "no-such-listener", "id"); err == nil {
		t.Fatal("Dial to unknown inproc address succeeded")
	}
}

func TestUnknownNetwork(t *testing.T) {
	if _, err := Listen("udp", ""); err == nil {
		t.Fatal("Listen(udp) succeeded")
	}
	if _, err := Dial("udp", "x", "id"); err == nil {
		t.Fatal("Dial(udp) succeeded")
	}
}

func TestMsgTypeString(t *testing.T) {
	for tp := MsgRegister; tp <= MsgStatus; tp++ {
		if s := tp.String(); s == "" || s[0] == 'M' && s != "MSG" && len(s) > 3 && s[:3] == "MSG" {
			t.Fatalf("MsgType(%d) has no name: %q", tp, s)
		}
	}
	if MsgType(200).String() != "MSG(200)" {
		t.Fatal(MsgType(200).String())
	}
}

func TestInprocDrainAfterClose(t *testing.T) {
	server, client := pair(t, "inproc")
	// Buffered message sent just before close must still be readable.
	if err := client.Send(Message{Type: MsgResult, Payload: []byte("final")}); err != nil {
		t.Fatal(err)
	}
	client.Close()
	got, err := server.Recv(time.Second)
	if err != nil || string(got.Payload) != "final" {
		t.Fatalf("Recv after close = %+v, %v (results sent before shutdown must not be lost)", got, err)
	}
}
