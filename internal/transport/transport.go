// Package transport is the ZeroMQ substitute used throughout the funcX
// fabric (paper §4.1, §4.3): the service's forwarders, endpoint agents,
// and node managers all exchange identity-tagged framed messages over
// point-to-point channels.
//
// Two interchangeable implementations are provided:
//
//   - "tcp": length-prefixed frames over real TCP sockets, used by the
//     standalone binaries and the latency experiments;
//   - "inproc": channel-backed connections inside one process, used by
//     tests and the in-process federation of internal/core.
//
// A connection is established with a short handshake in which the
// dialer announces its identity (like a ZeroMQ DEALER socket identity);
// the listener side exposes that identity so a ROUTER-style owner can
// route by peer.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// MsgType tags the purpose of a message, mirroring the funcX internal
// protocol between forwarder, agent, manager, and worker.
type MsgType uint8

// Protocol message types.
const (
	// MsgRegister announces a component and carries its metadata.
	MsgRegister MsgType = iota + 1
	// MsgRegisterAck acknowledges registration.
	MsgRegisterAck
	// MsgTask carries one packed task toward a worker.
	MsgTask
	// MsgTaskBatch carries several packed tasks in one frame
	// (executor-side batching, §4.7).
	MsgTaskBatch
	// MsgResult carries one packed result toward the service.
	MsgResult
	// MsgHeartbeat is the liveness probe in both directions.
	MsgHeartbeat
	// MsgCapacity is a manager/agent capacity advertisement,
	// including opportunistic prefetch capacity (§4.7).
	MsgCapacity
	// MsgTaskRequest asks the upstream peer for up to N tasks
	// (manager-side batch requests).
	MsgTaskRequest
	// MsgSuspend tells a manager to stop accepting new tasks.
	MsgSuspend
	// MsgShutdown tells the peer to terminate cleanly.
	MsgShutdown
	// MsgStatus carries an endpoint status report.
	MsgStatus
	// MsgAdvice carries scaling advice from the service's elasticity
	// controller to an endpoint agent, piggybacked on the forwarder's
	// heartbeat cycle.
	MsgAdvice
	// MsgRunning signals that a worker has begun executing a task,
	// relayed manager → agent → forwarder so the service can emit the
	// TaskRunning lifecycle event and extend the task's dispatch lease.
	MsgRunning
)

// String returns the protocol name of the message type.
func (t MsgType) String() string {
	//funcx:exhaustive funcx/internal/transport.MsgType
	switch t {
	case MsgRegister:
		return "REGISTER"
	case MsgRegisterAck:
		return "REGISTER_ACK"
	case MsgTask:
		return "TASK"
	case MsgTaskBatch:
		return "TASK_BATCH"
	case MsgResult:
		return "RESULT"
	case MsgHeartbeat:
		return "HEARTBEAT"
	case MsgCapacity:
		return "CAPACITY"
	case MsgTaskRequest:
		return "TASK_REQUEST"
	case MsgSuspend:
		return "SUSPEND"
	case MsgShutdown:
		return "SHUTDOWN"
	case MsgStatus:
		return "STATUS"
	case MsgAdvice:
		return "ADVICE"
	case MsgRunning:
		return "RUNNING"
	default:
		return fmt.Sprintf("MSG(%d)", uint8(t))
	}
}

// Message is one framed unit on the wire.
type Message struct {
	Type    MsgType
	Payload []byte
}

// Errors returned by connections.
var (
	// ErrClosed is returned after Close (locally or by the peer).
	ErrClosed = errors.New("transport: connection closed")
	// ErrTimeout is returned by timed receives that expire.
	ErrTimeout = errors.New("transport: receive timed out")
	// errTooLarge guards against corrupt length prefixes.
	errTooLarge = errors.New("transport: frame exceeds maximum size")
)

// MaxFrameSize bounds a single frame (64 MiB): funcX restricts data
// passed through the service and relies on out-of-band transfer for
// large data (§4.6), so frames beyond this indicate corruption.
const MaxFrameSize = 64 << 20

// Conn is a bidirectional, identity-tagged message channel. Send is
// safe for concurrent use; Recv must be called from one goroutine at a
// time.
type Conn interface {
	// Send writes one message.
	Send(Message) error
	// Recv blocks for the next message. A timeout <= 0 blocks
	// indefinitely; otherwise ErrTimeout is returned on expiry.
	Recv(timeout time.Duration) (Message, error)
	// RemoteIdentity returns the identity announced by the peer
	// (dialer side returns the listener's address).
	RemoteIdentity() string
	// Close tears down the connection, waking blocked receivers.
	Close() error
}

// Listener accepts incoming connections.
type Listener interface {
	// Accept blocks for the next connection (already handshaken).
	Accept() (Conn, error)
	// Addr returns the address to dial.
	Addr() string
	// Close stops accepting; blocked Accepts return ErrClosed.
	Close() error
}

// Listen opens a listener. network is "tcp" (addr like "127.0.0.1:0")
// or "inproc" (addr is any unique name; "" picks a fresh one).
func Listen(network, addr string) (Listener, error) {
	switch network {
	case "tcp":
		return listenTCP(addr)
	case "inproc":
		return listenInproc(addr)
	default:
		return nil, fmt.Errorf("transport: unknown network %q", network)
	}
}

// Dial connects to a listener, announcing identity.
func Dial(network, addr, identity string) (Conn, error) {
	switch network {
	case "tcp":
		return dialTCP(addr, identity)
	case "inproc":
		return dialInproc(addr, identity)
	default:
		return nil, fmt.Errorf("transport: unknown network %q", network)
	}
}

// ---------------------------------------------------------------------------
// TCP implementation

type tcpConn struct {
	c        net.Conn
	identity string // peer identity

	writeMu sync.Mutex
	readMu  sync.Mutex

	closeOnce sync.Once
	closedErr error
}

func listenTCP(addr string) (Listener, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return &tcpListener{l: l}, nil
}

type tcpListener struct {
	l net.Listener
}

func (t *tcpListener) Accept() (Conn, error) {
	c, err := t.l.Accept()
	if err != nil {
		return nil, ErrClosed
	}
	// Handshake: peer sends an identity frame first.
	id, err := readFrame(c)
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("transport: handshake: %w", err)
	}
	return &tcpConn{c: c, identity: string(id.Payload)}, nil
}

func (t *tcpListener) Addr() string { return t.l.Addr().String() }

func (t *tcpListener) Close() error { return t.l.Close() }

func dialTCP(addr, identity string) (Conn, error) {
	c, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	conn := &tcpConn{c: c, identity: addr}
	if err := conn.Send(Message{Type: MsgRegister, Payload: []byte(identity)}); err != nil {
		c.Close()
		return nil, fmt.Errorf("transport: handshake: %w", err)
	}
	return conn, nil
}

func (t *tcpConn) Send(m Message) error {
	t.writeMu.Lock()
	defer t.writeMu.Unlock()
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(m.Payload)+1))
	hdr[4] = byte(m.Type)
	if _, err := t.c.Write(hdr[:]); err != nil {
		return ErrClosed
	}
	if len(m.Payload) > 0 {
		if _, err := t.c.Write(m.Payload); err != nil {
			return ErrClosed
		}
	}
	return nil
}

func readFrame(c net.Conn) (Message, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(c, hdr[:4]); err != nil {
		return Message{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n == 0 || n > MaxFrameSize {
		return Message{}, errTooLarge
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(c, buf); err != nil {
		return Message{}, err
	}
	return Message{Type: MsgType(buf[0]), Payload: buf[1:]}, nil
}

func (t *tcpConn) Recv(timeout time.Duration) (Message, error) {
	t.readMu.Lock()
	defer t.readMu.Unlock()
	if timeout > 0 {
		if err := t.c.SetReadDeadline(time.Now().Add(timeout)); err != nil {
			return Message{}, ErrClosed
		}
	} else {
		if err := t.c.SetReadDeadline(time.Time{}); err != nil {
			return Message{}, ErrClosed
		}
	}
	m, err := readFrame(t.c)
	if err != nil {
		var nerr net.Error
		if errors.As(err, &nerr) && nerr.Timeout() {
			return Message{}, ErrTimeout
		}
		return Message{}, ErrClosed
	}
	return m, nil
}

func (t *tcpConn) RemoteIdentity() string { return t.identity }

func (t *tcpConn) Close() error {
	t.closeOnce.Do(func() { t.closedErr = t.c.Close() })
	return t.closedErr
}

// ---------------------------------------------------------------------------
// In-proc implementation

// inprocRegistry maps address names to accept channels, process-wide.
var inprocRegistry = struct {
	sync.Mutex
	listeners map[string]*inprocListener
	next      int
}{listeners: make(map[string]*inprocListener)}

type inprocListener struct {
	addr   string
	accept chan *inprocConn
	done   chan struct{}
	once   sync.Once
}

func listenInproc(addr string) (Listener, error) {
	inprocRegistry.Lock()
	defer inprocRegistry.Unlock()
	if addr == "" {
		inprocRegistry.next++
		addr = fmt.Sprintf("inproc-%d", inprocRegistry.next)
	}
	if _, exists := inprocRegistry.listeners[addr]; exists {
		return nil, fmt.Errorf("transport: inproc address %q already bound", addr)
	}
	l := &inprocListener{
		addr:   addr,
		accept: make(chan *inprocConn),
		done:   make(chan struct{}),
	}
	inprocRegistry.listeners[addr] = l
	return l, nil
}

func (l *inprocListener) Accept() (Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

func (l *inprocListener) Addr() string { return l.addr }

func (l *inprocListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		inprocRegistry.Lock()
		delete(inprocRegistry.listeners, l.addr)
		inprocRegistry.Unlock()
	})
	return nil
}

// inprocConn is one direction pair of buffered channels. Closing either
// side closes the shared done channel.
type inprocConn struct {
	identity string // peer identity
	recv     chan Message
	send     chan Message
	done     chan struct{}
	once     *sync.Once
}

// inprocBuffer is the per-direction message buffer. Large enough that
// senders rarely block in experiments, small enough to exert
// backpressure rather than grow without bound.
const inprocBuffer = 4096

func dialInproc(addr, identity string) (Conn, error) {
	inprocRegistry.Lock()
	l, ok := inprocRegistry.listeners[addr]
	inprocRegistry.Unlock()
	if !ok {
		return nil, fmt.Errorf("transport: no inproc listener at %q", addr)
	}
	a2b := make(chan Message, inprocBuffer)
	b2a := make(chan Message, inprocBuffer)
	done := make(chan struct{})
	once := &sync.Once{}
	dialSide := &inprocConn{identity: addr, recv: b2a, send: a2b, done: done, once: once}
	acceptSide := &inprocConn{identity: identity, recv: a2b, send: b2a, done: done, once: once}
	select {
	case l.accept <- acceptSide:
		return dialSide, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

func (c *inprocConn) Send(m Message) error {
	select {
	case <-c.done:
		return ErrClosed
	default:
	}
	select {
	case c.send <- m:
		return nil
	case <-c.done:
		return ErrClosed
	}
}

func (c *inprocConn) Recv(timeout time.Duration) (Message, error) {
	var timerC <-chan time.Time
	if timeout > 0 {
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		timerC = timer.C
	}
	// Drain buffered messages even after close, so results sent just
	// before shutdown are not lost.
	select {
	case m := <-c.recv:
		return m, nil
	default:
	}
	select {
	case m := <-c.recv:
		return m, nil
	case <-c.done:
		// Final drain race: a message may have landed between the
		// selects.
		select {
		case m := <-c.recv:
			return m, nil
		default:
			return Message{}, ErrClosed
		}
	case <-timerC:
		return Message{}, ErrTimeout
	}
}

func (c *inprocConn) RemoteIdentity() string { return c.identity }

func (c *inprocConn) Close() error {
	c.once.Do(func() { close(c.done) })
	return nil
}
