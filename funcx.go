// Package funcx is a from-scratch Go reproduction of funcX — the
// federated function-as-a-service fabric for science (Chard et al.,
// HPDC 2020) — together with every substrate its evaluation depends
// on and a harness that regenerates each table and figure of the
// paper's §5.
//
// # Public surface
//
// This root package re-exports the three entry points a downstream
// user needs:
//
//   - Client (the SDK of paper §3): register functions, run them on
//     endpoints, retrieve results, and batch with Map.
//   - Fabric (the deployment of §4): boot a cloud service plus any
//     number of endpoints — in one process for development and
//     experiments, or over TCP via the cmd/funcx-service and
//     cmd/funcx-endpoint binaries.
//   - The experiment drivers of §5 via cmd/funcx-bench.
//
// # Quickstart
//
//	fab, _ := funcx.NewFabric(funcx.FabricConfig{})
//	defer fab.Close()
//	ep, _ := fab.AddEndpoint(funcx.EndpointOptions{
//		Name: "laptop", Owner: "me", Managers: 1, WorkersPerManager: 4,
//	})
//	fc := fab.Client("me")
//	fnID, _ := fc.RegisterFunction(ctx, "echo", funcx.BodyEcho, funcx.ContainerSpec{}, nil)
//	payload, _ := funcx.Serialize("hello-world")
//	taskID, _ := fc.Run(ctx, fnID, ep.ID, payload)
//	res, _ := fc.GetResult(ctx, taskID)
//
// See examples/ for complete programs mirroring the paper's case
// studies, and DESIGN.md for the full system inventory.
package funcx

import (
	"funcx/internal/core"
	"funcx/internal/elastic"
	"funcx/internal/fx"
	"funcx/internal/router"
	"funcx/internal/sdk"
	"funcx/internal/serial"
	"funcx/internal/shard"
	"funcx/internal/types"
)

// Client is the funcX SDK client (paper §3 / Listing 1).
type Client = sdk.Client

// NewClient builds an SDK client for a service URL and bearer token.
// Call Client.Close when done to stop the background event-stream
// consumer behind futures.
func NewClient(baseURL, token string) *Client { return sdk.New(baseURL, token) }

// Result is a completed task outcome returned by the SDK.
type Result = sdk.Result

// RunOptions modify a submission (memoization, batch payloads).
type RunOptions = sdk.RunOptions

// SubmitSpec describes one task submission for Client.Submit /
// Client.SubmitFuture: a function, a target (endpoint or group), a
// payload, and options.
type SubmitSpec = sdk.SubmitSpec

// EndpointSpec describes an endpoint registration (Client.NewEndpoint).
type EndpointSpec = sdk.EndpointSpec

// GroupSpec describes an endpoint-group creation (Client.NewGroup).
type GroupSpec = sdk.GroupSpec

// Future is a handle on a submitted task's eventual result, resolved
// by the client's shared event-stream consumer (SSE with batch-wait
// fallback): N outstanding futures cost one connection, not N
// long-polls.
type Future = sdk.Future

// MapFuture tracks one Map call's batch futures
// (Client.MapFuture / Client.MapAnywhereFuture).
type MapFuture = sdk.MapFuture

// TaskEvent is one task lifecycle transition on a user's event stream
// (GET /v1/events).
type TaskEvent = types.TaskEvent

// Fabric is a running funcX federation: the cloud service plus its
// registered endpoints (paper §4).
type Fabric = core.Fabric

// FabricConfig parameterizes a federation.
type FabricConfig = core.FabricConfig

// NewFabric boots a service and its REST listener.
func NewFabric(cfg FabricConfig) (*Fabric, error) { return core.NewFabric(cfg) }

// ShardedFabric is a running multi-shard federation: N shared-nothing
// service shards behind one consistent-hash ring, any of which serves
// as a front door (requests for keys another shard owns are proxied or
// redirected by the cross-shard gateway).
type ShardedFabric = core.ShardedFabric

// ShardedFabricConfig parameterizes a multi-shard federation.
type ShardedFabricConfig = core.ShardedFabricConfig

// NewShardedFabric boots N service shards sharing a ring config and a
// token-signing key.
func NewShardedFabric(cfg ShardedFabricConfig) (*ShardedFabric, error) {
	return core.NewShardedFabric(cfg)
}

// ShardRingConfig is the seeded consistent-hash ring configuration
// every shard of a deployment must load identically (see
// internal/shard).
type ShardRingConfig = shard.Config

// ShardInfo locates one shard: ring identity plus REST base URL.
type ShardInfo = shard.Info

// Endpoint is one deployed endpoint: agent, managers, containerized
// workers.
type Endpoint = core.Endpoint

// EndpointOptions shape an endpoint deployment.
type EndpointOptions = core.EndpointOptions

// GroupOptions shape an endpoint-group creation: a named fleet the
// service router places tasks across (Client.RunAnywhere).
type GroupOptions = core.GroupOptions

// EndpointGroup is a registered endpoint group.
type EndpointGroup = types.EndpointGroup

// GroupMember names one endpoint in a group, with an optional static
// placement weight.
type GroupMember = types.GroupMember

// Placement policies accepted by group creation (internal/router).
const (
	// PolicyRoundRobin rotates through healthy group members.
	PolicyRoundRobin = string(router.RoundRobin)
	// PolicyLeastOutstanding picks the member with the smallest
	// backlog (queued + outstanding tasks).
	PolicyLeastOutstanding = string(router.LeastOutstanding)
	// PolicyWeightedQueueDepth picks the member with the smallest
	// backlog per unit of capacity (weight or live worker count).
	PolicyWeightedQueueDepth = string(router.WeightedQueueDepth)
	// PolicyLabelAffinity picks the member matching the most selector
	// labels, backlog-tie-broken.
	PolicyLabelAffinity = string(router.LabelAffinity)
)

// ElasticSpec opts an endpoint group into the service's fleet
// autoscaling controller (see internal/elastic): group-wide backlog is
// converted into per-member block targets and pushed to member
// endpoints as scaling advice, clamped at each endpoint to its own
// scaling limits.
type ElasticSpec = types.ElasticSpec

// ScalingAdvice is the controller's capacity recommendation for one
// endpoint, piggybacked on forwarder heartbeats.
type ScalingAdvice = types.ScalingAdvice

// Elasticity strategies accepted by ElasticSpec.Strategy.
const (
	// StrategyProportional distributes the group's block need by
	// backlog share.
	StrategyProportional = elastic.StrategyProportional
	// StrategyWatermark steps members up past a high per-block backlog
	// watermark and down after sustained low water (hysteresis).
	StrategyWatermark = elastic.StrategyWatermark
	// StrategyColdStart is proportional with a discount for members
	// whose blocks are still booting.
	StrategyColdStart = elastic.StrategyColdStart
)

// Identifiers and task records.
type (
	// TaskID identifies one function invocation.
	TaskID = types.TaskID
	// FunctionID identifies a registered function.
	FunctionID = types.FunctionID
	// EndpointID identifies a registered endpoint.
	EndpointID = types.EndpointID
	// GroupID identifies an endpoint group.
	GroupID = types.GroupID
	// UserID identifies a user.
	UserID = types.UserID
	// ContainerSpec names a function's execution environment.
	ContainerSpec = types.ContainerSpec
	// Timing is the per-hop latency breakdown (paper Figure 4).
	Timing = types.Timing
	// TaskStatus is a task's lifecycle state (queued → dispatched →
	// running → success/failed/lost).
	TaskStatus = types.TaskStatus
)

// Delivery-semantics errors surfaced by futures and result fetches.
var (
	// ErrTaskFailed wraps remote execution failures.
	ErrTaskFailed = sdk.ErrTaskFailed
	// ErrTaskLost wraps delivery-layer give-ups: the task's retry
	// budget was exhausted, or it was submitted at-most-once
	// (SubmitSpec.AtMostOnce) and its endpoint was lost mid-flight.
	// It also matches ErrTaskFailed.
	ErrTaskLost = sdk.ErrTaskLost
)

// Built-in function bodies (the workloads of paper §5).
var (
	// BodyNoop is the 0-second no-op function.
	BodyNoop = fx.BodyNoop
	// BodySleep sleeps for its float64-seconds argument.
	BodySleep = fx.BodySleep
	// BodyStress busy-spins one core for its argument duration.
	BodyStress = fx.BodyStress
	// BodyEcho returns its payload unchanged ("hello-world").
	BodyEcho = fx.BodyEcho
	// BodyDouble sleeps 1 s and doubles its argument (Table 3).
	BodyDouble = fx.BodyDouble
)

// Serialize encodes a value with the funcX serialization facade
// (paper §4.6).
func Serialize(v any) ([]byte, error) { return serial.Serialize(v) }

// Deserialize decodes a facade buffer, optionally into out.
func Deserialize(buf []byte, out any) (any, error) { return serial.Deserialize(buf, out) }
