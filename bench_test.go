// Benchmarks regenerating every table and figure of the paper's §5
// evaluation (one benchmark per artifact, backed by the drivers in
// internal/experiments), plus ablation benches for the design choices
// DESIGN.md calls out and micro-benchmarks of the hot substrates.
//
// The experiment benches run in Quick mode so `go test -bench=.`
// finishes in minutes; `cmd/funcx-bench` runs the same drivers at full
// scale with full output.
package funcx

import (
	"context"
	"io"
	"testing"
	"time"

	"funcx/internal/core"
	"funcx/internal/endpoint"
	"funcx/internal/experiments"
	"funcx/internal/fx"
	"funcx/internal/memo"
	"funcx/internal/perf"
	"funcx/internal/scale"
	"funcx/internal/serial"
	"funcx/internal/service"
	"funcx/internal/store"
	"funcx/internal/types"
)

// runExperiment executes one §5 driver per iteration.
func runExperiment(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := experiments.Run(name, experiments.Options{Quick: true, Seed: 42, Out: io.Discard}); err != nil {
			b.Fatalf("experiment %s: %v", name, err)
		}
	}
}

// --- one benchmark per paper table/figure ---

// BenchmarkFigure1CaseStudyLatencies regenerates Figure 1.
func BenchmarkFigure1CaseStudyLatencies(b *testing.B) { runExperiment(b, "fig1") }

// BenchmarkTable1FaaSLatency regenerates Table 1.
func BenchmarkTable1FaaSLatency(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkFigure4LatencyBreakdown regenerates Figure 4.
func BenchmarkFigure4LatencyBreakdown(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkFigure5StrongScaling regenerates Figure 5(a).
func BenchmarkFigure5StrongScaling(b *testing.B) { runExperiment(b, "fig5strong") }

// BenchmarkFigure5WeakScaling regenerates Figure 5(b).
func BenchmarkFigure5WeakScaling(b *testing.B) { runExperiment(b, "fig5weak") }

// BenchmarkAgentThroughput regenerates §5.2.3.
func BenchmarkAgentThroughput(b *testing.B) { runExperiment(b, "throughput") }

// BenchmarkFigure6Elasticity regenerates Figure 6.
func BenchmarkFigure6Elasticity(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFigure7ManagerFailure regenerates Figure 7.
func BenchmarkFigure7ManagerFailure(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFigure8EndpointFailure regenerates Figure 8.
func BenchmarkFigure8EndpointFailure(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkTable2ContainerCold regenerates Table 2.
func BenchmarkTable2ContainerCold(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkExecutorBatching regenerates §5.5.2.
func BenchmarkExecutorBatching(b *testing.B) { runExperiment(b, "batchexec") }

// BenchmarkFigure9MapStrongScaling regenerates Figure 9.
func BenchmarkFigure9MapStrongScaling(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFigure10BatchCaseStudies regenerates Figure 10.
func BenchmarkFigure10BatchCaseStudies(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFigure11Prefetching regenerates Figure 11.
func BenchmarkFigure11Prefetching(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkTable3Memoization regenerates Table 3.
func BenchmarkTable3Memoization(b *testing.B) { runExperiment(b, "table3") }

// --- ablations (DESIGN.md §5) ---

// benchFabricEcho measures end-to-end task round trips through a
// fabric with the given options applied.
func benchFabricEcho(b *testing.B, mutate func(*core.EndpointOptions)) {
	b.Helper()
	fab, err := core.NewFabric(core.FabricConfig{Service: service.Config{
		HeartbeatPeriod: 100 * time.Millisecond,
	}})
	if err != nil {
		b.Fatal(err)
	}
	defer fab.Close()
	opts := core.EndpointOptions{
		Name: "bench", Owner: "bench",
		Managers: 2, WorkersPerManager: 4, PrewarmWorkers: 4,
		BatchDispatch:   true,
		HeartbeatPeriod: 100 * time.Millisecond,
	}
	if mutate != nil {
		mutate(&opts)
	}
	ep, err := fab.AddEndpoint(opts)
	if err != nil {
		b.Fatal(err)
	}
	client := fab.Client("bench")
	ctx := context.Background()
	fnID, err := client.RegisterFunction(ctx, "echo", fx.BodyEcho, types.ContainerSpec{}, nil)
	if err != nil {
		b.Fatal(err)
	}
	payload, err := serial.Serialize("ping")
	if err != nil {
		b.Fatal(err)
	}
	// Warm the path.
	for i := 0; i < 4; i++ {
		id, err := client.Run(ctx, fnID, ep.ID, payload)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := client.GetResult(ctx, id); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id, err := client.Run(ctx, fnID, ep.ID, payload)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := client.GetResult(ctx, id); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSchedulingRandom measures the paper's randomized
// manager scheduling policy.
func BenchmarkAblationSchedulingRandom(b *testing.B) {
	benchFabricEcho(b, func(o *core.EndpointOptions) { o.Policy = endpoint.ScheduleRandom })
}

// BenchmarkAblationSchedulingRoundRobin measures round-robin
// scheduling.
func BenchmarkAblationSchedulingRoundRobin(b *testing.B) {
	benchFabricEcho(b, func(o *core.EndpointOptions) { o.Policy = endpoint.ScheduleRoundRobin })
}

// BenchmarkAblationSchedulingFirstFit measures first-fit scheduling.
func BenchmarkAblationSchedulingFirstFit(b *testing.B) {
	benchFabricEcho(b, func(o *core.EndpointOptions) { o.Policy = endpoint.ScheduleFirstFit })
}

// BenchmarkAblationNoBatchDispatch disables executor-side batching on
// the real fabric (the §5.5.2 contrast at micro scale).
func BenchmarkAblationNoBatchDispatch(b *testing.B) {
	benchFabricEcho(b, func(o *core.EndpointOptions) { o.BatchDispatch = false })
}

// BenchmarkAblationPrefetch enables manager prefetching on the real
// fabric.
func BenchmarkAblationPrefetch(b *testing.B) {
	benchFabricEcho(b, func(o *core.EndpointOptions) { o.Prefetch = 8 })
}

// BenchmarkAblationPrefetchModel sweeps prefetch in the calibrated
// model: prefetch 0 vs 64 on 4 Theta nodes (Figure 11's endpoints).
func BenchmarkAblationPrefetchModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		none := scale.Run(scale.RunConfig{Model: scale.Theta, Containers: 256, Tasks: 5000,
			TaskDur: 10 * time.Millisecond, Batching: true, Prefetch: 0})
		full := scale.Run(scale.RunConfig{Model: scale.Theta, Containers: 256, Tasks: 5000,
			TaskDur: 10 * time.Millisecond, Batching: true, Prefetch: 64})
		b.ReportMetric(none.Completion.Seconds()/full.Completion.Seconds(), "speedup")
	}
}

// --- control-plane hot paths (cmd/funcx-perf runs the same bodies
// standalone and emits BENCH_6.json) ---

// BenchmarkSubmitHotPath measures one authenticated submit per
// iteration with the pure in-memory store.
func BenchmarkSubmitHotPath(b *testing.B) { perf.BenchSubmit(b, false) }

// BenchmarkSubmitHotPathWAL is the same path with every store
// mutation journaled through the group-committed WAL — the PR-6
// acceptance bar is staying within 35% of in-memory.
func BenchmarkSubmitHotPathWAL(b *testing.B) { perf.BenchSubmit(b, true) }

// BenchmarkBatchWait measures a 16-task submit + batch-wait round
// trip through POST /v1/tasks/wait.
func BenchmarkBatchWait(b *testing.B) { perf.BenchBatchWait(b) }

// BenchmarkDurabilityExperiment runs the §PR-6 durability driver
// (WAL crash recovery + shard drain) end to end in quick mode.
func BenchmarkDurabilityExperiment(b *testing.B) { runExperiment(b, "durability") }

// --- substrate micro-benchmarks ---

// BenchmarkSerializerString measures the string fast path.
func BenchmarkSerializerString(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf, err := serial.Serialize("hello-world")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := serial.Deserialize(buf, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSerializerStruct measures the gob path on a task-like
// struct.
func BenchmarkSerializerStruct(b *testing.B) {
	type record struct {
		Name  string
		Score float64
		Tags  []string
	}
	v := record{Name: "sample", Score: 0.97, Tags: []string{"a", "b", "c"}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf, err := serial.Serialize(v)
		if err != nil {
			b.Fatal(err)
		}
		var out record
		if _, err := serial.Deserialize(buf, &out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSerializerChainOrder contrasts the default
// fastest-first serializer chain with a JSON-first chain (the §4.6
// design choice: funcX sorts serializers by speed).
func BenchmarkAblationSerializerChainOrder(b *testing.B) {
	jsonFirst := serial.NewJSONFirstFacade()
	b.Run("fastest-first", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := serial.Serialize("a-typical-string-payload"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("json-first", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := jsonFirst.Serialize("a-typical-string-payload"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkStoreQueue measures reliable queue push/pop/ack cycles.
func BenchmarkStoreQueue(b *testing.B) {
	q := store.NewQueue()
	payload := []byte("task")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := q.Push(payload); err != nil {
			b.Fatal(err)
		}
		_, receipt, err := q.BPopReliable(time.Second)
		if err != nil {
			b.Fatal(err)
		}
		if err := q.Ack(receipt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMemoCache measures memo lookup+store cycles.
func BenchmarkMemoCache(b *testing.B) {
	c := memo.NewCache(1 << 12)
	res := types.Result{TaskID: "t", Output: []byte("42")}
	payload := []byte("input")
	c.Store("hash", payload, res)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Lookup("hash", payload); !ok {
			b.Fatal("miss")
		}
	}
}

// BenchmarkSimEngine measures discrete-event throughput (events/s).
func BenchmarkSimEngine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := scale.Run(scale.RunConfig{
			Model: scale.Theta, Containers: 1024, Tasks: 50_000,
			Batching: true, Prefetch: 64,
		})
		if r.Completion <= 0 {
			b.Fatal("no completion")
		}
	}
}
