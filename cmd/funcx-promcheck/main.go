// Command funcx-promcheck validates a Prometheus text exposition
// against the strict parser in internal/promtext: family headers,
// label escaping, duplicate series, and histogram bucket invariants.
// CI points it at a live /v1/metrics to fail the build on malformed
// output before any scraper sees it.
//
// Usage:
//
//	funcx-promcheck -url http://127.0.0.1:8080/v1/metrics -token <token>
//	some-producer | funcx-promcheck        # reads stdin when -url is empty
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"time"

	"funcx/internal/promtext"
)

func main() {
	var (
		url   = flag.String("url", "", "exposition URL to fetch (empty = read stdin)")
		token = flag.String("token", "", "bearer token for the fetch")
	)
	flag.Parse()

	var body []byte
	var err error
	if *url == "" {
		body, err = io.ReadAll(os.Stdin)
		if err != nil {
			log.Fatalf("funcx-promcheck: reading stdin: %v", err)
		}
	} else {
		body, err = fetch(*url, *token)
		if err != nil {
			log.Fatalf("funcx-promcheck: %v", err)
		}
	}

	families, err := promtext.Parse(string(body))
	if err != nil {
		log.Fatalf("funcx-promcheck: INVALID exposition: %v", err)
	}
	samples := 0
	for _, f := range families {
		samples += len(f.Samples)
	}
	fmt.Printf("funcx-promcheck: OK — %d families, %d samples\n", len(families), samples)
}

func fetch(url, token string) ([]byte, error) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: HTTP %d: %s", url, resp.StatusCode, body)
	}
	return body, nil
}
