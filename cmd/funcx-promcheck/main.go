// Command funcx-promcheck validates a Prometheus text exposition
// against the strict parser in internal/promtext: family headers,
// label escaping, duplicate series, and histogram bucket invariants.
// CI points it at a live /v1/metrics to fail the build on malformed
// output before any scraper sees it.
//
// Usage:
//
//	funcx-promcheck -url http://127.0.0.1:8080/v1/metrics -token <token>
//	some-producer | funcx-promcheck        # reads stdin when -url is empty
//
// With -exemplars it additionally requires that every populated
// funcx_task_stage_seconds bucket carries an OpenMetrics exemplar
// (value-in-bounds is already enforced by the parser), so CI catches a
// scrape that silently lost its task-id links.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"funcx/internal/promtext"
)

func main() {
	var (
		url       = flag.String("url", "", "exposition URL to fetch (empty = read stdin)")
		token     = flag.String("token", "", "bearer token for the fetch")
		exemplars = flag.Bool("exemplars", false, "require exemplars on populated funcx_task_stage_seconds buckets")
	)
	flag.Parse()

	var body []byte
	var err error
	if *url == "" {
		body, err = io.ReadAll(os.Stdin)
		if err != nil {
			log.Fatalf("funcx-promcheck: reading stdin: %v", err)
		}
	} else {
		body, err = fetch(*url, *token)
		if err != nil {
			log.Fatalf("funcx-promcheck: %v", err)
		}
	}

	families, err := promtext.Parse(string(body))
	if err != nil {
		log.Fatalf("funcx-promcheck: INVALID exposition: %v", err)
	}
	samples := 0
	for _, f := range families {
		samples += len(f.Samples)
	}
	nex := 0
	if *exemplars {
		nex, err = checkExemplars(families)
		if err != nil {
			log.Fatalf("funcx-promcheck: MISSING exemplars: %v", err)
		}
	}
	fmt.Printf("funcx-promcheck: OK — %d families, %d samples", len(families), samples)
	if *exemplars {
		fmt.Printf(", %d exemplars", nex)
	}
	fmt.Println()
}

// checkExemplars walks funcx_task_stage_seconds and requires an
// exemplar on every bucket that holds at least one observation of its
// own (cumulative value above the preceding bucket's). A document
// without the family — a fleet that has run no tasks yet — passes
// vacuously.
func checkExemplars(families []promtext.Family) (int, error) {
	f := promtext.Get(families, "funcx_task_stage_seconds")
	if f == nil {
		return 0, nil
	}
	n := 0
	prev := map[string]float64{} // series set (labels minus le) → last cumulative
	for i := range f.Samples {
		s := &f.Samples[i]
		if s.Name != "funcx_task_stage_seconds_bucket" {
			continue
		}
		key := setKey(s.Labels)
		incr := s.Value - prev[key]
		prev[key] = s.Value
		if s.Exemplar != nil {
			n++
			continue
		}
		if incr > 0 {
			return n, fmt.Errorf("bucket %v holds %g observations but no exemplar", s.Labels, incr)
		}
	}
	return n, nil
}

// setKey canonicalizes a bucket's series set (its labels minus le).
func setKey(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != "le" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%q,", k, labels[k])
	}
	return b.String()
}

func fetch(url, token string) ([]byte, error) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: HTTP %d: %s", url, resp.StatusCode, body)
	}
	return body, nil
}
