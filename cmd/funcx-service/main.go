// Command funcx-service runs the cloud-hosted funcX service standalone:
// the REST API on an HTTP port, with TCP forwarders for endpoint
// agents (paper §4.1).
//
// On startup it mints an operator token with full scopes and prints
// it; pass that token to funcx-endpoint and to SDK clients.
//
// Usage:
//
//	funcx-service -addr 127.0.0.1:8080
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"time"

	"funcx/internal/auth"
	"funcx/internal/service"
	"funcx/internal/types"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8080", "HTTP listen address")
		heartbeat = flag.Duration("heartbeat", time.Second, "forwarder heartbeat period")
		misses    = flag.Int("misses", 3, "heartbeats missed before an endpoint is marked lost")
		resultTTL = flag.Duration("result-ttl", time.Minute, "retention of retrieved results")
		operator  = flag.String("operator", "operator", "user id for the minted operator token")
	)
	flag.Parse()

	svc := service.New(service.Config{
		ForwarderNetwork: "tcp",
		HeartbeatPeriod:  *heartbeat,
		HeartbeatMisses:  *misses,
		ResultTTL:        *resultTTL,
	})
	defer svc.Close()

	token := svc.MintUserToken(types.UserID(*operator), auth.ScopeAll)
	fmt.Printf("funcx-service listening on http://%s\n", *addr)
	fmt.Printf("operator token (%s, all scopes):\n%s\n", *operator, token)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("funcx-service: %v", err)
	}
	srv := &http.Server{Handler: svc}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Fatalf("funcx-service: %v", err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("\nfuncx-service: shutting down")
	srv.Close()
}
