// Command funcx-service runs the cloud-hosted funcX service standalone:
// the REST API on an HTTP port, with TCP forwarders for endpoint
// agents (paper §4.1).
//
// On startup it mints an operator token with full scopes and prints
// it; pass that token to funcx-endpoint and to SDK clients.
//
// Usage:
//
//	funcx-service -addr 127.0.0.1:8080
//
// Sharded deployment: run one process per shard, all loading the SAME
// ring file and auth key, each naming itself:
//
//	funcx-service -addr 10.0.0.1:8080 -shard-id shard-0 -shard-ring ring.json -auth-key <hex>
//	funcx-service -addr 10.0.0.2:8080 -shard-id shard-1 -shard-ring ring.json -auth-key <hex>
//
// where ring.json is a shard ring config, e.g.
//
//	{"shards": [{"id": "shard-0", "base_url": "http://10.0.0.1:8080"},
//	            {"id": "shard-1", "base_url": "http://10.0.0.2:8080"}],
//	 "seed": 42}
//
// Any shard then serves as a front door: requests for keys another
// shard owns are proxied or redirected by the cross-shard gateway.
package main

import (
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"time"

	"funcx/internal/auth"
	"funcx/internal/debugserver"
	"funcx/internal/service"
	"funcx/internal/shard"
	"funcx/internal/types"
)

// parseLogLevel maps the -log-level flag to a slog level.
func parseLogLevel(s string) (slog.Level, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(s)); err != nil {
		return 0, fmt.Errorf("bad -log-level %q (use debug|info|warn|error)", s)
	}
	return lvl, nil
}

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8080", "HTTP listen address")
		heartbeat = flag.Duration("heartbeat", time.Second, "forwarder heartbeat period")
		misses    = flag.Int("misses", 3, "heartbeats missed before an endpoint is marked lost")
		resultTTL = flag.Duration("result-ttl", time.Minute, "retention of retrieved results")
		operator  = flag.String("operator", "operator", "user id for the minted operator token")
		shardID   = flag.String("shard-id", "", "this instance's shard id (requires -shard-ring)")
		ringPath  = flag.String("shard-ring", "", "path to the shared shard-ring JSON config")
		authKey   = flag.String("auth-key", "", "hex-encoded shared token-signing key (required for sharded deployments)")
		submitCap = flag.Int("submit-concurrency", 0, "bound on concurrently processed submissions (0 = unlimited)")
		dataDir   = flag.String("data-dir", "", "durable state directory: WAL + snapshots, with crash recovery on boot (empty = in-memory)")
		walSync   = flag.Duration("wal-sync", 0, "WAL group-commit fsync window (0 = default 2ms)")
		snapBytes = flag.Int("snapshot-bytes", 0, "journal bytes before a snapshot truncates the WAL (0 = default 8MiB)")
		snapOps   = flag.Int("snapshot-ops", 0, "journal records before a snapshot truncates the WAL (0 = default 100k)")
		snapEvery = flag.Duration("snapshot-interval", 0, "how often snapshot thresholds are checked (0 = default 500ms)")
		debugAddr = flag.String("debug-addr", "", "serve net/http/pprof and runtime metrics on this address (empty = disabled)")
		logLevel  = flag.String("log-level", "info", "structured log level: debug|info|warn|error (per-task records log at debug)")
		noTrace   = flag.Bool("no-trace", false, "disable per-task lifecycle tracing (timelines, stage histograms, GET /v1/tasks/{id}/trace)")
		traceRate = flag.Float64("trace-sample", 0, "fraction of tasks recording trace timelines, deterministic by task-id hash; DAG nodes sample together by graph id (0 or >=1 traces everything, negative traces nothing)")
		dagKeep   = flag.Duration("dag-retention", 0, "how long a finished DAG stays queryable via GET /v1/dags/{id} before eviction (0 = 15m default, negative = retain forever)")
		otlp      = flag.String("otlp", "", "OTLP/HTTP collector base URL for span export (spans POST to <url>/v1/traces; empty = disabled)")
	)
	flag.Parse()

	lvl, err := parseLogLevel(*logLevel)
	if err != nil {
		log.Fatalf("funcx-service: %v", err)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl}))

	cfg := service.Config{
		ForwarderNetwork:  "tcp",
		HeartbeatPeriod:   *heartbeat,
		HeartbeatMisses:   *misses,
		ResultTTL:         *resultTTL,
		SubmitConcurrency: *submitCap,
		DataDir:           *dataDir,
		WALSyncInterval:   *walSync,
		SnapshotBytes:     *snapBytes,
		SnapshotOps:       *snapOps,
		SnapshotInterval:  *snapEvery,
		DisableTrace:      *noTrace,
		TraceSampleRate:   *traceRate,
		DAGRetention:      *dagKeep,
		Logger:            logger,
		OTLPEndpoint:      *otlp,
	}
	if (*shardID == "") != (*ringPath == "") {
		log.Fatal("funcx-service: -shard-id and -shard-ring must be set together")
	}
	if *ringPath != "" {
		data, err := os.ReadFile(*ringPath)
		if err != nil {
			log.Fatalf("funcx-service: reading ring config: %v", err)
		}
		var ringCfg shard.Config
		if err := json.Unmarshal(data, &ringCfg); err != nil {
			log.Fatalf("funcx-service: parsing ring config: %v", err)
		}
		dir, err := shard.NewDirectory(ringCfg, shard.ID(*shardID))
		if err != nil {
			log.Fatalf("funcx-service: %v", err)
		}
		if *authKey == "" {
			log.Fatal("funcx-service: sharded deployments need -auth-key (the same hex key on every shard)")
		}
		cfg.ShardID = shard.ID(*shardID)
		cfg.Ring = dir
	}
	if *authKey != "" {
		key, err := hex.DecodeString(*authKey)
		if err != nil {
			log.Fatalf("funcx-service: -auth-key must be hex: %v", err)
		}
		cfg.AuthKey = key
	}

	svc, err := service.Open(cfg)
	if err != nil {
		log.Fatalf("funcx-service: %v", err)
	}
	defer svc.Close()

	if *debugAddr != "" {
		dbg, stopDbg, err := debugserver.StartReady(*debugAddr, svc.Ready)
		if err != nil {
			log.Fatalf("funcx-service: %v", err)
		}
		defer stopDbg()
		fmt.Printf("debug surface (pprof + runtime metrics + healthz/readyz) on http://%s/\n", dbg)
	}

	token := svc.MintUserToken(types.UserID(*operator), auth.ScopeAll)
	fmt.Printf("funcx-service listening on http://%s\n", *addr)
	if *dataDir != "" {
		st, _ := svc.Store.WALStats()
		if st.Recovered {
			fmt.Printf("recovered %d WAL records from %s (snapshot %d bytes, %d torn)\n",
				st.RecoveredRecords, *dataDir, st.RecoveredSnapshot, st.TornRecords)
		} else {
			fmt.Printf("durable state in %s (fresh journal)\n", *dataDir)
		}
	}
	if cfg.Ring != nil {
		fmt.Printf("shard %s in a %d-shard ring (any shard is a valid front door)\n",
			cfg.ShardID, cfg.Ring.N())
	}
	if *otlp != "" {
		fmt.Printf("exporting OTLP spans to %s/v1/traces\n", *otlp)
	}
	fmt.Printf("operator token (%s, all scopes):\n%s\n", *operator, token)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("funcx-service: %v", err)
	}
	srv := &http.Server{Handler: svc}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Fatalf("funcx-service: %v", err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("\nfuncx-service: shutting down")
	srv.Close()
}
