// Command funcx-perf runs the control-plane benchmark suite (the
// same bodies bench_test.go uses, from internal/perf) and writes a
// machine-readable report. CI runs it via `make bench` to produce
// BENCH_6.json: the submit hot path with the store in-memory vs
// WAL-backed, and the batch-wait round trip.
//
// Usage:
//
//	funcx-perf -out BENCH_6.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"testing"
	"time"

	"funcx/internal/perf"
)

// benchResult is one testing.BenchmarkResult flattened for JSON.
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
}

type report struct {
	GoVersion string        `json:"go_version"`
	GOOS      string        `json:"goos"`
	GOARCH    string        `json:"goarch"`
	CPUs      int           `json:"cpus"`
	Date      string        `json:"date"`
	Bench     []benchResult `json:"benchmarks"`
	// WALOverhead compares submit throughput (16 concurrent submitters
	// over a fixed task count) with the WAL journaling every store
	// mutation against the pure in-memory store, measured in
	// interleaved pairs with the best of -count rounds reported.
	// Ratio is wal/inmem; the PR-6 acceptance floor is 0.65 (within
	// 35%).
	WALOverhead struct {
		Tasks          int     `json:"tasks_per_run"`
		Runs           int     `json:"runs"`
		InMemOpsPerSec float64 `json:"inmem_ops_per_sec"`
		WALOpsPerSec   float64 `json:"wal_ops_per_sec"`
		Ratio          float64 `json:"ratio"`
	} `json:"wal_overhead"`
}

// pairedThroughput measures the WAL overhead ratio with interleaved
// rounds: each round runs the in-memory and the WAL configuration
// back-to-back, so both sides sample the same machine weather, and
// the round with the best ratio wins — the paper's peak-throughput
// convention applied to the *pair*. On a shared box either side alone
// swings 2x with scheduler and disk hiccups; unpaired peaks can match
// a lucky in-memory run against an unlucky WAL run and report noise
// as overhead.
func pairedThroughput(tasks, count int) (inmem, walRate float64, err error) {
	bestRatio := -1.0
	for i := 0; i < count; i++ {
		// Start every run from a compacted heap: garbage left by the
		// benchmark suite (and the previous round) otherwise taxes the
		// measured window with collector work it didn't generate.
		runtime.GC()
		m, err := perf.SubmitThroughput(false, tasks)
		if err != nil {
			return 0, 0, err
		}
		runtime.GC()
		w, err := perf.SubmitThroughput(true, tasks)
		if err != nil {
			return 0, 0, err
		}
		fmt.Printf("  round %d: %8.0f/s in-memory  %8.0f/s WAL  (%.2fx)\n", i+1, m, w, w/m)
		if m > 0 && w/m > bestRatio {
			bestRatio, inmem, walRate = w/m, m, w
		}
	}
	return inmem, walRate, nil
}

func run(name string, fn func(b *testing.B)) benchResult {
	r := testing.Benchmark(fn)
	ns := float64(r.T.Nanoseconds()) / float64(r.N)
	res := benchResult{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     ns,
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		OpsPerSec:   1e9 / ns,
	}
	fmt.Printf("%-16s %10d iters  %12.0f ns/op  %8d B/op  %6d allocs/op  %9.0f ops/s\n",
		name, res.Iterations, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp, res.OpsPerSec)
	return res
}

func main() {
	var (
		out   = flag.String("out", "BENCH_6.json", "path for the JSON report")
		floor = flag.Float64("wal-floor", 0, "fail unless WAL submit throughput >= floor * in-memory (0 disables)")
		tasks = flag.Int("tasks", 4000, "tasks per throughput run")
		count = flag.Int("count", 3, "interleaved throughput rounds (best ratio wins)")
		bench = flag.Bool("bench", true, "run the testing.Benchmark suite before the throughput comparison")
	)
	flag.Parse()

	rep := report{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Date:      time.Now().UTC().Format(time.RFC3339),
	}
	if *bench {
		rep.Bench = []benchResult{
			run("submit_inmem", func(b *testing.B) { perf.BenchSubmit(b, false) }),
			run("submit_wal", func(b *testing.B) { perf.BenchSubmit(b, true) }),
			run("batch_wait", func(b *testing.B) { perf.BenchBatchWait(b) }),
		}
	}

	inmem, walRate, err := pairedThroughput(*tasks, *count)
	if err != nil {
		log.Fatalf("funcx-perf: throughput comparison: %v", err)
	}
	rep.WALOverhead.Tasks = *tasks
	rep.WALOverhead.Runs = *count
	rep.WALOverhead.InMemOpsPerSec = inmem
	rep.WALOverhead.WALOpsPerSec = walRate
	if inmem > 0 {
		rep.WALOverhead.Ratio = walRate / inmem
	}
	fmt.Printf("submit throughput: %.0f/s in-memory, %.0f/s WAL — WAL is %.2fx in-memory\n",
		inmem, walRate, rep.WALOverhead.Ratio)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatalf("funcx-perf: %v", err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		log.Fatalf("funcx-perf: %v", err)
	}
	fmt.Printf("wrote %s\n", *out)

	if *floor > 0 && rep.WALOverhead.Ratio < *floor {
		log.Fatalf("funcx-perf: WAL submit throughput %.2fx in-memory, below the %.2f floor",
			rep.WALOverhead.Ratio, *floor)
	}
}
