// Command funcx-perf runs the control-plane benchmark suite (the
// same bodies bench_test.go uses, from internal/perf) and writes a
// machine-readable report. CI runs it via `make bench` to produce
// BENCH_10.json: the submit hot path with the store in-memory vs
// WAL-backed, the batch-wait round trip, the per-task tracing
// overhead (traced vs untraced submit throughput), the OTLP span
// export overhead (export on vs off against a stub collector), and
// the server-side workflow comparison (one DAG submission vs a
// client-orchestrated 2-stage fan-in).
//
// Usage:
//
//	funcx-perf -out BENCH_10.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"testing"
	"time"

	"funcx/internal/perf"
)

// benchResult is one testing.BenchmarkResult flattened for JSON.
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
}

type report struct {
	GoVersion string        `json:"go_version"`
	GOOS      string        `json:"goos"`
	GOARCH    string        `json:"goarch"`
	CPUs      int           `json:"cpus"`
	Date      string        `json:"date"`
	Bench     []benchResult `json:"benchmarks"`
	// WALOverhead compares submit throughput (16 concurrent submitters
	// over a fixed task count) with the WAL journaling every store
	// mutation against the pure in-memory store, measured in
	// interleaved pairs with the best of -count rounds reported.
	// Ratio is wal/inmem; the PR-6 acceptance floor is 0.65 (within
	// 35%).
	WALOverhead struct {
		Tasks          int     `json:"tasks_per_run"`
		Runs           int     `json:"runs"`
		InMemOpsPerSec float64 `json:"inmem_ops_per_sec"`
		WALOpsPerSec   float64 `json:"wal_ops_per_sec"`
		Ratio          float64 `json:"ratio"`
	} `json:"wal_overhead"`
	// TraceOverhead is the cost of per-task tracing (the default: a
	// timeline stamped per lifecycle stage, folded into histograms at
	// retirement) against tracing disabled, measured two ways.
	//
	// The hot-path fields compare per-op submit latency
	// (testing.Benchmark over the authenticated POST /v1/submit path)
	// in interleaved traced/untraced rounds, aggregated over all
	// rounds (ratio = untraced/traced ns per op). The PR-7 budget is
	// ≤5% (ratio ≥ 0.95); note that on boxes with one or two cores the
	// background lifecycle work — task/result codecs, GC of the
	// retained timelines — shares the submit core and a few extra
	// points land here that vanish when cores are free to absorb it.
	//
	// The throughput fields compare sustained end-to-end throughput
	// with both fabrics held open and short measurement windows
	// alternating untraced/traced (aggregate rate per side). This
	// charges tracing for its whole lifecycle footprint — wire bytes,
	// result deltas, histogram folds — so on boxes with few cores,
	// where background lifecycle work steals submitter CPU directly,
	// it reads a few points below the hot-path ratio.
	TraceOverhead struct {
		HotPathUntracedNsPerOp float64 `json:"hot_path_untraced_ns_per_op"`
		HotPathTracedNsPerOp   float64 `json:"hot_path_traced_ns_per_op"`
		HotPathRatio           float64 `json:"hot_path_ratio"`
		TasksPerWindow         int     `json:"tasks_per_window"`
		Windows                int     `json:"windows"`
		UntracedOpsPerSec      float64 `json:"untraced_ops_per_sec"`
		TracedOpsPerSec        float64 `json:"traced_ops_per_sec"`
		Ratio                  float64 `json:"ratio"`
	} `json:"trace_overhead"`
	// OTLPOverhead compares per-op submit latency with OTLP span
	// export on (timelines batched and POSTed to a stub collector)
	// against export disabled, in the same interleaved-rounds shape as
	// the tracing hot path. Export rides the Collector.OnFinish hook
	// behind a drop-oldest queue, so the submit path only ever pays a
	// channel send; the PR-10 floor is 0.85 (ratio = disabled/enabled
	// ns per op).
	OTLPOverhead struct {
		HotPathDisabledNsPerOp float64 `json:"hot_path_disabled_ns_per_op"`
		HotPathEnabledNsPerOp  float64 `json:"hot_path_enabled_ns_per_op"`
		HotPathRatio           float64 `json:"hot_path_ratio"`
	} `json:"otlp_overhead"`
	// DAGComparison runs the same 2-stage fan-in workflow (N maps →
	// one reduce) two ways on one fabric with a conservative 5 ms
	// one-way client↔service WAN latency: as ONE server-side graph
	// (internal edges released, bound, and routed inside the fabric)
	// and client-orchestrated (every map output transits the client,
	// which assembles and submits the reduce itself). Rounds
	// interleave with alternating order; makespans are summed wall
	// per side over all rounds. Both sides execute the identical task
	// set on the same endpoint, so the ratio (baseline/dag) isolates
	// internal-edge latency; the PR-8 acceptance floor is 1.5.
	DAGComparison struct {
		FanIn           int     `json:"fan_in"`
		Rounds          int     `json:"rounds"`
		DAGMakespanSec  float64 `json:"dag_makespan_sec"`
		BaseMakespanSec float64 `json:"client_orchestrated_makespan_sec"`
		Ratio           float64 `json:"ratio"`
	} `json:"dag_comparison"`
}

// pairedThroughput measures the WAL overhead ratio with interleaved
// rounds: each round runs the in-memory and the WAL configuration
// back-to-back, so both sides sample the same machine weather, and
// the round with the best ratio wins — the paper's peak-throughput
// convention applied to the *pair*. On a shared box either side alone
// swings 2x with scheduler and disk hiccups; unpaired peaks can match
// a lucky in-memory run against an unlucky WAL run and report noise
// as overhead.
func pairedThroughput(tasks, count int) (inmem, walRate float64, err error) {
	bestRatio := -1.0
	for i := 0; i < count; i++ {
		// Start every run from a compacted heap: garbage left by the
		// benchmark suite (and the previous round) otherwise taxes the
		// measured window with collector work it didn't generate.
		runtime.GC()
		m, err := perf.SubmitThroughput(false, tasks)
		if err != nil {
			return 0, 0, err
		}
		runtime.GC()
		w, err := perf.SubmitThroughput(true, tasks)
		if err != nil {
			return 0, 0, err
		}
		fmt.Printf("  round %d: %8.0f/s in-memory  %8.0f/s WAL  (%.2fx)\n", i+1, m, w, w/m)
		if m > 0 && w/m > bestRatio {
			bestRatio, inmem, walRate = w/m, m, w
		}
	}
	return inmem, walRate, nil
}

// pairedHotPath measures per-op submit latency with a feature off and
// on in interleaved testing.Benchmark rounds, alternating which side
// runs first, and reports the per-op time aggregated over all rounds.
// A single round swings with GC and scheduler weather far more than
// the few percent being measured, so unlike the WAL comparison no
// single round is trusted — only the aggregate. Both the tracing and
// the OTLP-export comparisons run through it.
func pairedHotPath(count int, offLabel, onLabel string, body func(b *testing.B, on bool)) (offNs, onNs float64) {
	bench := func(on bool) testing.BenchmarkResult {
		runtime.GC()
		return testing.Benchmark(func(b *testing.B) { body(b, on) })
	}
	var offDur, onDur int64
	var offN, onN int
	for i := 0; i < count; i++ {
		var rOff, rOn testing.BenchmarkResult
		if i%2 == 0 {
			rOff = bench(false)
			rOn = bench(true)
		} else {
			rOn = bench(true)
			rOff = bench(false)
		}
		o := float64(rOff.T.Nanoseconds()) / float64(rOff.N)
		n := float64(rOn.T.Nanoseconds()) / float64(rOn.N)
		fmt.Printf("  round %d: %8.0f ns/op %s  %8.0f ns/op %s (%.2fx)\n", i+1, o, offLabel, n, onLabel, o/n)
		offDur += rOff.T.Nanoseconds()
		offN += rOff.N
		onDur += rOn.T.Nanoseconds()
		onN += rOn.N
	}
	return float64(offDur) / float64(offN), float64(onDur) / float64(onN)
}

// traceOverhead measures the tracing comparison with
// perf.TraceOverheadPaired: both fabrics stay open for the whole
// comparison and many short measurement windows alternate
// untraced/traced, with the aggregate rate per side compared. The
// per-round best-of pairing used for the WAL comparison is too coarse
// here: tracing costs a few percent, and on a small box a single
// monolithic run swings far more than that, so the overhead has to be
// averaged across interleaved windows to be visible at all.
func traceOverhead(tasks, count int) (perWindow, windows int, untraced, traced float64, err error) {
	perWindow = tasks / 4
	if perWindow < 16 {
		perWindow = 16
	}
	windows = count * 4
	untraced, traced, err = perf.TraceOverheadPaired(perWindow, windows)
	return perWindow, windows, untraced, traced, err
}

func run(name string, fn func(b *testing.B)) benchResult {
	r := testing.Benchmark(fn)
	ns := float64(r.T.Nanoseconds()) / float64(r.N)
	res := benchResult{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     ns,
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		OpsPerSec:   1e9 / ns,
	}
	fmt.Printf("%-16s %10d iters  %12.0f ns/op  %8d B/op  %6d allocs/op  %9.0f ops/s\n",
		name, res.Iterations, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp, res.OpsPerSec)
	return res
}

func main() {
	var (
		out        = flag.String("out", "BENCH_10.json", "path for the JSON report")
		floor      = flag.Float64("wal-floor", 0, "fail unless WAL submit throughput >= floor * in-memory (0 disables)")
		traceFloor = flag.Float64("trace-floor", 0, "fail unless the traced submit hot path runs >= floor * the untraced per-op rate (0 disables)")
		otlpFloor  = flag.Float64("otlp-floor", 0, "fail unless the export-enabled submit hot path runs >= floor * the export-disabled per-op rate (0 disables)")
		dagFloor   = flag.Float64("dag-floor", 0, "fail unless the client-orchestrated fan-in takes >= floor * the server-side DAG makespan (0 disables)")
		tasks      = flag.Int("tasks", 4000, "tasks per throughput run")
		count      = flag.Int("count", 3, "interleaved throughput rounds (best ratio wins)")
		dagN       = flag.Int("dag-n", 100, "fan-in width of the DAG workflow comparison")
		bench      = flag.Bool("bench", true, "run the testing.Benchmark suite before the throughput comparison")
	)
	flag.Parse()

	rep := report{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Date:      time.Now().UTC().Format(time.RFC3339),
	}
	if *bench {
		rep.Bench = []benchResult{
			run("submit_inmem", func(b *testing.B) { perf.BenchSubmit(b, false) }),
			run("submit_wal", func(b *testing.B) { perf.BenchSubmit(b, true) }),
			run("batch_wait", func(b *testing.B) { perf.BenchBatchWait(b) }),
		}
	}

	inmem, walRate, err := pairedThroughput(*tasks, *count)
	if err != nil {
		log.Fatalf("funcx-perf: throughput comparison: %v", err)
	}
	rep.WALOverhead.Tasks = *tasks
	rep.WALOverhead.Runs = *count
	rep.WALOverhead.InMemOpsPerSec = inmem
	rep.WALOverhead.WALOpsPerSec = walRate
	if inmem > 0 {
		rep.WALOverhead.Ratio = walRate / inmem
	}
	fmt.Printf("submit throughput: %.0f/s in-memory, %.0f/s WAL — WAL is %.2fx in-memory\n",
		inmem, walRate, rep.WALOverhead.Ratio)

	offNs, onNs := pairedHotPath(*count, "untraced", "traced", perf.BenchSubmitTrace)
	rep.TraceOverhead.HotPathUntracedNsPerOp = offNs
	rep.TraceOverhead.HotPathTracedNsPerOp = onNs
	if onNs > 0 {
		rep.TraceOverhead.HotPathRatio = offNs / onNs
	}
	fmt.Printf("submit hot path: %.0f ns/op untraced, %.0f ns/op traced — tracing is %.2fx untraced\n",
		offNs, onNs, rep.TraceOverhead.HotPathRatio)

	noExpNs, expNs := pairedHotPath(*count, "export off", "export on", perf.BenchSubmitOTLP)
	rep.OTLPOverhead.HotPathDisabledNsPerOp = noExpNs
	rep.OTLPOverhead.HotPathEnabledNsPerOp = expNs
	if expNs > 0 {
		rep.OTLPOverhead.HotPathRatio = noExpNs / expNs
	}
	fmt.Printf("submit hot path: %.0f ns/op export off, %.0f ns/op export on — OTLP export is %.2fx disabled\n",
		noExpNs, expNs, rep.OTLPOverhead.HotPathRatio)

	perWindow, windows, untraced, traced, err := traceOverhead(*tasks, *count)
	if err != nil {
		log.Fatalf("funcx-perf: tracing comparison: %v", err)
	}
	rep.TraceOverhead.TasksPerWindow = perWindow
	rep.TraceOverhead.Windows = windows
	rep.TraceOverhead.UntracedOpsPerSec = untraced
	rep.TraceOverhead.TracedOpsPerSec = traced
	if untraced > 0 {
		rep.TraceOverhead.Ratio = traced / untraced
	}
	fmt.Printf("lifecycle throughput: %.0f/s untraced, %.0f/s traced — tracing is %.2fx untraced\n",
		untraced, traced, rep.TraceOverhead.Ratio)

	dagSec, baseSec, err := perf.DAGComparison(*dagN, *count)
	if err != nil {
		log.Fatalf("funcx-perf: dag comparison: %v", err)
	}
	rep.DAGComparison.FanIn = *dagN
	rep.DAGComparison.Rounds = *count
	rep.DAGComparison.DAGMakespanSec = dagSec
	rep.DAGComparison.BaseMakespanSec = baseSec
	if dagSec > 0 {
		rep.DAGComparison.Ratio = baseSec / dagSec
	}
	fmt.Printf("fan-in %d workflow: %.0f ms server-side DAG, %.0f ms client-orchestrated — server-side is %.2fx faster on internal edges\n",
		*dagN, dagSec*1000, baseSec*1000, rep.DAGComparison.Ratio)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatalf("funcx-perf: %v", err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		log.Fatalf("funcx-perf: %v", err)
	}
	fmt.Printf("wrote %s\n", *out)

	if *floor > 0 && rep.WALOverhead.Ratio < *floor {
		log.Fatalf("funcx-perf: WAL submit throughput %.2fx in-memory, below the %.2f floor",
			rep.WALOverhead.Ratio, *floor)
	}
	if *traceFloor > 0 && rep.TraceOverhead.HotPathRatio < *traceFloor {
		log.Fatalf("funcx-perf: traced submit hot path %.2fx untraced, below the %.2f floor",
			rep.TraceOverhead.HotPathRatio, *traceFloor)
	}
	if *otlpFloor > 0 && rep.OTLPOverhead.HotPathRatio < *otlpFloor {
		log.Fatalf("funcx-perf: export-enabled submit hot path %.2fx export-disabled, below the %.2f floor",
			rep.OTLPOverhead.HotPathRatio, *otlpFloor)
	}
	if *dagFloor > 0 && rep.DAGComparison.Ratio < *dagFloor {
		log.Fatalf("funcx-perf: server-side DAG only %.2fx the client-orchestrated fan-in, below the %.2f floor",
			rep.DAGComparison.Ratio, *dagFloor)
	}
}
