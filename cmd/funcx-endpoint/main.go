// Command funcx-endpoint deploys a funcX endpoint agent on this
// machine (paper §4.3): it registers an endpoint with a running
// funcx-service, connects the agent to its forwarder over TCP, and
// launches managers with containerized workers.
//
// The worker runtime ships with the built-in functions (noop, sleep,
// stress, echo, double, fail) and the six §2 case-study functions
// pre-registered, so any client can exercise the endpoint immediately.
//
// Usage:
//
//	funcx-endpoint -service http://127.0.0.1:8080 -token <operator-token> \
//	    -name my-laptop -managers 2 -workers 4
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"time"

	"funcx/internal/api"
	"funcx/internal/container"
	"funcx/internal/debugserver"
	"funcx/internal/endpoint"
	"funcx/internal/fx"
	"funcx/internal/manager"
	"funcx/internal/sdk"
	"funcx/internal/types"
	"funcx/internal/workload"
)

func main() {
	var (
		serviceURL = flag.String("service", "http://127.0.0.1:8080", "funcx-service base URL")
		token      = flag.String("token", "", "bearer token (from funcx-service)")
		name       = flag.String("name", "endpoint", "endpoint display name")
		public     = flag.Bool("public", false, "allow any authenticated user to dispatch")
		managers   = flag.Int("managers", 1, "manager (node) count")
		workers    = flag.Int("workers", 4, "workers per manager")
		prewarm    = flag.Int("prewarm", 0, "workers to deploy per manager at startup")
		prefetch   = flag.Int("prefetch", 0, "per-manager prefetch depth")
		system     = flag.String("system", "ec2", "container cold-start profile (ec2|theta|cori)")
		heartbeat  = flag.Duration("heartbeat", time.Second, "heartbeat period")
		labelSpec  = flag.String("labels", "", "capability labels for router matching, comma-separated key=value (e.g. gpu=a100,site=anl)")
		noAdvice   = flag.Bool("no-advice", false, "ignore scaling advice pushed by the service's fleet elasticity controller (scaling stays purely local)")
		reattachID = flag.String("endpoint-id", "", "reattach to this existing endpoint instead of registering a new one (after a durable service restarts, its recovered endpoints keep their queued tasks)")
		debugAddr  = flag.String("debug-addr", "", "serve net/http/pprof and runtime metrics on this address (empty = disabled)")
		logLevel   = flag.String("log-level", "info", "structured log level: debug|info|warn|error (per-task records log at debug)")
	)
	flag.Parse()
	if *token == "" {
		log.Fatal("funcx-endpoint: -token is required (printed by funcx-service)")
	}
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(*logLevel)); err != nil {
		log.Fatalf("funcx-endpoint: bad -log-level %q (use debug|info|warn|error)", *logLevel)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl}))
	if *debugAddr != "" {
		dbg, stopDbg, err := debugserver.Start(*debugAddr)
		if err != nil {
			log.Fatalf("funcx-endpoint: %v", err)
		}
		defer stopDbg()
		fmt.Printf("debug surface (pprof + runtime metrics) on http://%s/debug/\n", dbg)
	}
	labels, err := parseLabels(*labelSpec)
	if err != nil {
		log.Fatalf("funcx-endpoint: %v", err)
	}

	ctx := context.Background()
	client := sdk.New(*serviceURL, *token)
	var reg *api.RegisterEndpointResponse
	if *reattachID != "" {
		resp, err := client.ReattachEndpoint(ctx, types.EndpointID(*reattachID))
		if err != nil {
			log.Fatalf("funcx-endpoint: reattaching: %v", err)
		}
		reg = resp
		fmt.Printf("reattached endpoint %s\n", reg.EndpointID)
	} else {
		resp, err := client.RegisterEndpointLabeled(ctx, *name, "funcx-endpoint CLI", *public, labels)
		if err != nil {
			log.Fatalf("funcx-endpoint: registering: %v", err)
		}
		reg = resp
		fmt.Printf("registered endpoint %s\n", reg.EndpointID)
	}
	fmt.Printf("forwarder at %s://%s\n", reg.ForwarderNetwork, reg.ForwarderAddr)

	rt := fx.NewRuntime()
	rt.RegisterBuiltins()
	for _, cs := range workload.All() {
		cs.Register(rt)
	}
	ctrs := container.NewRuntime(container.Config{System: *system, TimeScale: 1.0})

	agent := endpoint.New(endpoint.Config{
		ID:              reg.EndpointID,
		ServiceNetwork:  reg.ForwarderNetwork,
		ServiceAddr:     reg.ForwarderAddr,
		Token:           reg.EndpointToken,
		ListenNetwork:   "tcp",
		HeartbeatPeriod: *heartbeat,
		BatchDispatch:   true,
		DisableAdvice:   *noAdvice,
		Logger:          logger,
	})
	if err := agent.Start(ctx); err != nil {
		log.Fatalf("funcx-endpoint: starting agent: %v", err)
	}
	defer agent.Stop()

	network, addr := agent.ManagerAddr()
	var mgrs []*manager.Manager
	for i := 0; i < *managers; i++ {
		m := manager.New(manager.Config{
			ID:              types.ManagerID(fmt.Sprintf("%s-mgr-%d", *name, i+1)),
			AgentNetwork:    network,
			AgentAddr:       addr,
			MaxWorkers:      *workers,
			PrewarmWorkers:  *prewarm,
			Prefetch:        *prefetch,
			HeartbeatPeriod: *heartbeat,
			Runtime:         rt,
			Containers:      ctrs,
		})
		if err := m.Start(ctx); err != nil {
			log.Fatalf("funcx-endpoint: starting manager %d: %v", i, err)
		}
		defer m.Stop()
		mgrs = append(mgrs, m)
	}
	fmt.Printf("agent up: %d managers x %d workers; serving tasks (Ctrl-C to stop)\n",
		*managers, *workers)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("\nfuncx-endpoint: draining and shutting down")
	var done int64
	for _, m := range mgrs {
		done += m.Completed()
	}
	fmt.Printf("completed %d tasks this session\n", done)
}

// parseLabels parses "k=v,k2=v2" into a label map ("" -> nil).
func parseLabels(spec string) (map[string]string, error) {
	if spec == "" {
		return nil, nil
	}
	labels := make(map[string]string)
	for _, pair := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || k == "" {
			return nil, fmt.Errorf("bad -labels entry %q (want key=value)", pair)
		}
		labels[k] = v
	}
	return labels, nil
}
