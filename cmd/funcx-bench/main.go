// Command funcx-bench regenerates every table and figure of the funcX
// paper's evaluation (§5). Run a single experiment with -experiment,
// or everything with -experiment all.
//
// Usage:
//
//	funcx-bench -experiment all
//	funcx-bench -experiment table1
//	funcx-bench -list
package main

import (
	"flag"
	"fmt"
	"os"

	"funcx/internal/experiments"
)

func main() {
	var (
		name  = flag.String("experiment", "all", "experiment id (see -list)")
		quick = flag.Bool("quick", false, "shrink sample counts for a fast pass")
		seed  = flag.Int64("seed", 42, "random seed (reproducible runs)")
		list  = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()
	if *list {
		for _, n := range experiments.Names() {
			fmt.Println(n)
		}
		return
	}
	opts := experiments.Options{Quick: *quick, Seed: *seed, Out: os.Stdout}
	if err := experiments.Run(*name, opts); err != nil {
		fmt.Fprintln(os.Stderr, "funcx-bench:", err)
		os.Exit(1)
	}
}
