// funcx-vet runs the project's static-analysis suite
// (internal/analysis) over the given package patterns and exits
// nonzero when any unsuppressed finding remains. It is wired into
// `make lint` and CI; see the README "Static analysis" section for
// what each analyzer enforces and how `//funcx:ignore` directives
// work.
//
// Usage:
//
//	funcx-vet [-v] [-list] [packages]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"funcx/internal/analysis"
)

func main() {
	verbose := flag.Bool("v", false, "also print suppressed findings with their justifications")
	list := flag.Bool("list", false, "list the analyzers and exit")
	dir := flag.String("C", ".", "directory to run in (module root)")
	flag.Parse()

	suite := analysis.All()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "funcx-vet:", err)
		os.Exit(2)
	}

	diags := analysis.Run(pkgs, suite, analysis.Options{CheckIgnores: true})
	unsuppressed := 0
	perAnalyzer := make(map[string][2]int) // name -> {unsuppressed, suppressed}
	for _, d := range diags {
		counts := perAnalyzer[d.Analyzer]
		if d.Suppressed {
			counts[1]++
			if *verbose {
				fmt.Println(d)
			}
		} else {
			counts[0]++
			unsuppressed++
			fmt.Println(d)
		}
		perAnalyzer[d.Analyzer] = counts
	}

	if *verbose {
		names := make([]string, 0, len(perAnalyzer))
		for name := range perAnalyzer {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			c := perAnalyzer[name]
			fmt.Fprintf(os.Stderr, "%-16s %d finding(s), %d suppressed\n", name, c[0], c[1])
		}
	}

	if unsuppressed > 0 {
		fmt.Fprintf(os.Stderr, "funcx-vet: %d unsuppressed finding(s) in %d package(s)\n", unsuppressed, len(pkgs))
		os.Exit(1)
	}
}
