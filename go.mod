module funcx

go 1.23
